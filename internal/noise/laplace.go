package noise

import (
	"fmt"
	"math"

	"ppdm/internal/prng"
)

// Laplace is additive noise with density (1/2b)·exp(−|y|/b). It is the
// mechanism of modern (local) differential privacy, provided here as an
// extension that bridges the paper's confidence-interval privacy metric to
// ε-DP: perturbing a value whose domain has width W with Laplace(W/ε) noise
// gives ε-differential privacy for that value.
type Laplace struct{ B float64 }

// NewLaplace validates b > 0.
func NewLaplace(b float64) (Laplace, error) {
	if !(b > 0) || math.IsInf(b, 0) || math.IsNaN(b) {
		return Laplace{}, fmt.Errorf("noise: laplace scale must be positive and finite, got %v", b)
	}
	return Laplace{B: b}, nil
}

// Name implements Model.
func (l Laplace) Name() string { return "laplace" }

// Sample implements Model via inverse-CDF sampling.
func (l Laplace) Sample(r *prng.Source) float64 {
	u := r.Float64() - 0.5
	if u >= 0 {
		return -l.B * math.Log(1-2*u)
	}
	return l.B * math.Log(1+2*u)
}

// Density implements Model.
func (l Laplace) Density(y float64) float64 {
	return math.Exp(-math.Abs(y)/l.B) / (2 * l.B)
}

// CDF implements Model.
func (l Laplace) CDF(y float64) float64 {
	if y < 0 {
		return 0.5 * math.Exp(y/l.B)
	}
	return 1 - 0.5*math.Exp(-y/l.B)
}

// ConfidenceWidth implements Model: P(|Y| <= t) = 1 − e^(−t/b) = conf gives
// t = −b·ln(1−conf), so the centered interval has width 2t.
func (l Laplace) ConfidenceWidth(conf float64) float64 {
	return -2 * l.B * math.Log(1-conf)
}

// Support implements Supporter: P(|Y| > R) = e^(−R/b) = tailMass gives
// R = −b·ln(tailMass). The support is unbounded, so tailMass <= 0 yields
// +Inf.
func (l Laplace) Support(tailMass float64) float64 {
	if !(tailMass > 0) {
		return math.Inf(1)
	}
	if tailMass >= 1 {
		return 0
	}
	return -l.B * math.Log(tailMass)
}

// LaplaceForPrivacy calibrates Laplace noise to the paper's privacy level
// (fraction of domain width at the given confidence).
func LaplaceForPrivacy(level, width, conf float64) (Laplace, error) {
	if err := checkLevelConf(level, width, conf); err != nil {
		return Laplace{}, err
	}
	return NewLaplace(level * width / (-2 * math.Log(1-conf)))
}

// LaplaceForEpsilon calibrates Laplace noise to ε-differential privacy for
// a value whose domain width (= sensitivity of the identity query) is
// width: b = width/ε.
func LaplaceForEpsilon(epsilon, width float64) (Laplace, error) {
	if !(epsilon > 0) || math.IsInf(epsilon, 0) || math.IsNaN(epsilon) {
		return Laplace{}, fmt.Errorf("noise: epsilon must be positive and finite, got %v", epsilon)
	}
	if !(width > 0) || math.IsInf(width, 0) || math.IsNaN(width) {
		return Laplace{}, fmt.Errorf("noise: domain width must be positive, got %v", width)
	}
	return NewLaplace(width / epsilon)
}

// Epsilon returns the differential-privacy parameter this noise provides
// for a value whose domain width is width: ε = width/b. Smaller is more
// private.
func (l Laplace) Epsilon(width float64) float64 { return width / l.B }
