package noise

import (
	"fmt"

	"ppdm/internal/dataset"
	"ppdm/internal/parallel"
	"ppdm/internal/stream"
)

// perturbStream perturbs record batches as they flow.
type perturbStream struct {
	src     stream.Source
	models  map[int]Model
	cursor  *stream.ChunkCursor
	workers int
	nAttrs  int
}

// PerturbStream wraps a record stream so that every batch is perturbed in
// flight — the paper's collection model, where each record is randomized
// before it reaches the server, with O(batch) memory however large the
// table. Noise for global record i always comes from the i/PerturbChunk-th
// substream of the seed (tracked across batch boundaries by a
// stream.ChunkCursor), so the streamed output is byte-identical to
// PerturbTableWorkers on the materialized table, at any worker count and
// any batch size. Batches are perturbed in place: the returned source yields
// the upstream batches with their values modified.
func PerturbStream(src stream.Source, models map[int]Model, seed uint64, workers int) (stream.Source, error) {
	nAttrs := src.Schema().NumAttrs()
	for j, m := range models {
		if j < 0 || j >= nAttrs {
			return nil, fmt.Errorf("noise: model for attribute %d, stream has %d attributes", j, nAttrs)
		}
		if m == nil {
			return nil, fmt.Errorf("noise: nil model for attribute %d", j)
		}
	}
	return &perturbStream{
		src:     src,
		models:  models,
		cursor:  stream.NewChunkCursor(seed, PerturbChunk),
		workers: workers,
		nAttrs:  nAttrs,
	}, nil
}

// Schema implements stream.Source.
func (p *perturbStream) Schema() *dataset.Schema { return p.src.Schema() }

// Next implements stream.Source: it pulls the next upstream batch, adds
// noise to every modeled attribute, and returns the batch.
func (p *perturbStream) Next() (*stream.Batch, error) {
	b, err := p.src.Next()
	if err != nil {
		return nil, err
	}
	if b.Start != p.cursor.Pos() {
		return nil, fmt.Errorf("noise: batch starts at %d, stream cursor at %d (batches must arrive in order)",
			b.Start, p.cursor.Pos())
	}
	spans, err := p.cursor.Advance(b.N())
	if err != nil {
		return nil, err
	}
	// Spans own independent chunk substreams and disjoint record ranges,
	// mirroring PerturbTableWorkers' chunk loop exactly.
	parallel.ForEach(len(spans), p.workers, func(si int) error {
		sp := spans[si]
		r := sp.R
		for i := sp.Lo; i < sp.Hi; i++ {
			row := b.Row(i - b.Start)
			for j := 0; j < p.nAttrs; j++ {
				m, ok := p.models[j]
				if !ok {
					continue
				}
				row[j] += m.Sample(r)
			}
		}
		return nil
	})
	return b, nil
}
