package noise

import (
	"fmt"

	"ppdm/internal/dataset"
	"ppdm/internal/parallel"
	"ppdm/internal/prng"
)

// PerturbChunk is the fixed record-chunk length of the parallel perturbation.
// Each chunk draws its noise from an independent PRNG substream derived from
// the seed and the chunk index, so the chunk grid — and therefore the output
// — depends only on the table size and the seed, never on the worker count.
const PerturbChunk = 2048

// PerturbTable returns a deep copy of t in which each attribute listed in
// models has independent noise added to every record (the paper's data
// collection step: each provider randomizes its own record). Class labels
// are never perturbed. Perturbation is deterministic in seed and runs on all
// available cores; use PerturbTableWorkers to bound the parallelism.
func PerturbTable(t *dataset.Table, models map[int]Model, seed uint64) (*dataset.Table, error) {
	return PerturbTableWorkers(t, models, seed, 0)
}

// PerturbTableWorkers is PerturbTable with an explicit worker count
// (0 = all cores). The output is bit-identical for every worker count: noise
// for records [c·PerturbChunk, (c+1)·PerturbChunk) always comes from the c-th
// substream of the seed, regardless of which worker processes the chunk.
func PerturbTableWorkers(t *dataset.Table, models map[int]Model, seed uint64, workers int) (*dataset.Table, error) {
	nAttrs := t.Schema().NumAttrs()
	for j, m := range models {
		if j < 0 || j >= nAttrs {
			return nil, fmt.Errorf("noise: model for attribute %d, table has %d attributes", j, nAttrs)
		}
		if m == nil {
			return nil, fmt.Errorf("noise: nil model for attribute %d", j)
		}
	}
	out := t.Clone()
	srcs := prng.SplitN(seed, parallel.NumChunks(out.N(), PerturbChunk))
	parallel.ForEachChunk(out.N(), PerturbChunk, workers, func(c, lo, hi int) {
		r := srcs[c]
		for i := lo; i < hi; i++ {
			row := out.Row(i)
			for j := 0; j < nAttrs; j++ {
				m, ok := models[j]
				if !ok {
					continue
				}
				out.SetValue(i, j, row[j]+m.Sample(r))
			}
		}
	})
	return out, nil
}

// ModelsForAllAttrs builds the per-attribute model map used throughout the
// paper's experiments: every attribute receives noise of the same family at
// the same privacy level, scaled to that attribute's own domain width.
func ModelsForAllAttrs(s *dataset.Schema, family string, level, conf float64) (map[int]Model, error) {
	models := make(map[int]Model, s.NumAttrs())
	for j, a := range s.Attrs {
		m, err := ForPrivacy(family, level, a.Width(), conf)
		if err != nil {
			return nil, fmt.Errorf("noise: attribute %q: %w", a.Name, err)
		}
		models[j] = m
	}
	return models, nil
}

// ModelsForAttrs is ModelsForAllAttrs restricted to the given attribute
// indices.
func ModelsForAttrs(s *dataset.Schema, attrs []int, family string, level, conf float64) (map[int]Model, error) {
	all, err := ModelsForAllAttrs(s, family, level, conf)
	if err != nil {
		return nil, err
	}
	models := make(map[int]Model, len(attrs))
	for _, j := range attrs {
		if j < 0 || j >= s.NumAttrs() {
			return nil, fmt.Errorf("noise: attribute index %d out of range", j)
		}
		models[j] = all[j]
	}
	return models, nil
}

// DiscretizeTable applies the paper's value-class-membership operator: each
// listed attribute's value is replaced by the midpoint of its interval when
// the attribute's domain is split into k equal-width intervals. Values
// outside the domain are clamped to the first or last interval. The result
// is a deep copy.
func DiscretizeTable(t *dataset.Table, attrs []int, k int) (*dataset.Table, error) {
	if k <= 0 {
		return nil, fmt.Errorf("noise: discretization needs k > 0 intervals, got %d", k)
	}
	s := t.Schema()
	for _, j := range attrs {
		if j < 0 || j >= s.NumAttrs() {
			return nil, fmt.Errorf("noise: attribute index %d out of range", j)
		}
	}
	out := t.Clone()
	for _, j := range attrs {
		a := s.Attrs[j]
		width := a.Width() / float64(k)
		for i := 0; i < out.N(); i++ {
			v := out.Row(i)[j]
			bin := int((v - a.Lo) / width)
			if bin < 0 {
				bin = 0
			}
			if bin >= k {
				bin = k - 1
			}
			out.SetValue(i, j, a.Lo+(float64(bin)+0.5)*width)
		}
	}
	return out, nil
}
