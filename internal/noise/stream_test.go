package noise

import (
	"testing"

	"ppdm/internal/dataset"
	"ppdm/internal/prng"
	"ppdm/internal/stream"
)

func streamTestTable(t *testing.T, n int, seed uint64) *dataset.Table {
	t.Helper()
	s, err := dataset.NewSchema(
		[]dataset.Attribute{
			dataset.NumericAttr("a", 0, 100),
			dataset.NumericAttr("b", -10, 10),
			dataset.NumericAttr("c", 0, 1),
		},
		[]string{"x", "y"},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := prng.New(seed)
	tb := dataset.NewTable(s)
	for i := 0; i < n; i++ {
		rec := []float64{r.Uniform(0, 100), r.Uniform(-10, 10), r.Float64()}
		if err := tb.Append(rec, r.Intn(2)); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// Streamed perturbation must be byte-identical to PerturbTableWorkers for
// every batch size — aligned with PerturbChunk or not — and worker count.
func TestPerturbStreamMatchesTable(t *testing.T) {
	tb := streamTestTable(t, 9000, 5)
	models := map[int]Model{0: Uniform{Alpha: 7}, 2: Gaussian{Sigma: 0.3}}
	const seed = 77
	want, err := PerturbTableWorkers(tb, models, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{500, 2048, 3000, 9000} {
		for _, workers := range []int{1, 8} {
			src, err := PerturbStream(stream.FromTable(tb, batch), models, seed, workers)
			if err != nil {
				t.Fatal(err)
			}
			got, err := stream.Collect(src)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < want.N(); i++ {
				if got.Label(i) != want.Label(i) {
					t.Fatalf("batch %d workers %d: label %d differs", batch, workers, i)
				}
				a, b := got.Row(i), want.Row(i)
				for j := range a {
					if a[j] != b[j] { // bitwise float equality, on purpose
						t.Fatalf("batch %d workers %d: record %d attr %d: %v != %v",
							batch, workers, i, j, a[j], b[j])
					}
				}
			}
		}
	}
}

func TestPerturbStreamValidation(t *testing.T) {
	tb := streamTestTable(t, 10, 1)
	if _, err := PerturbStream(stream.FromTable(tb, 0), map[int]Model{9: Uniform{Alpha: 1}}, 1, 0); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if _, err := PerturbStream(stream.FromTable(tb, 0), map[int]Model{0: nil}, 1, 0); err == nil {
		t.Error("nil model accepted")
	}
}

// A stream whose batches skip records cannot be aligned to the noise chunk
// grid; the perturber must reject it rather than silently desynchronize.
func TestPerturbStreamRejectsGap(t *testing.T) {
	tb := streamTestTable(t, 100, 2)
	gappy := &skipSource{inner: stream.FromTable(tb, 10)}
	src, err := PerturbStream(gappy, map[int]Model{0: Uniform{Alpha: 1}}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	if _, err := src.Next(); err == nil {
		t.Error("gap in stream accepted")
	}
}

type skipSource struct {
	inner stream.Source
	n     int
}

func (s *skipSource) Schema() *dataset.Schema { return s.inner.Schema() }

func (s *skipSource) Next() (*stream.Batch, error) {
	b, err := s.inner.Next()
	if err != nil {
		return nil, err
	}
	s.n++
	if s.n == 2 {
		b, err = s.inner.Next() // drop one batch
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}
