package noise

import (
	"math"
	"testing"

	"ppdm/internal/prng"
	"ppdm/internal/stats"
)

func TestRandomizedResponseValidation(t *testing.T) {
	if _, err := NewRandomizedResponse(-0.1, 3); err == nil {
		t.Error("keep < 0 accepted")
	}
	if _, err := NewRandomizedResponse(1.1, 3); err == nil {
		t.Error("keep > 1 accepted")
	}
	if _, err := NewRandomizedResponse(0.5, 1); err == nil {
		t.Error("card < 2 accepted")
	}
}

func TestRandomizedResponseApplyRange(t *testing.T) {
	rr, _ := NewRandomizedResponse(0.7, 4)
	r := prng.New(1)
	for i := 0; i < 10000; i++ {
		v := rr.Apply(i%4, r)
		if v < 0 || v >= 4 {
			t.Fatalf("response %d out of range", v)
		}
	}
}

func TestRandomizedResponseApplyPanics(t *testing.T) {
	rr, _ := NewRandomizedResponse(0.7, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range code did not panic")
		}
	}()
	rr.Apply(4, prng.New(1))
}

func TestResponseProbRowsSumToOne(t *testing.T) {
	rr, _ := NewRandomizedResponse(0.6, 5)
	for i := 0; i < 5; i++ {
		var sum float64
		for j := 0; j < 5; j++ {
			sum += rr.ResponseProb(i, j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestResponseChannelEmpirical(t *testing.T) {
	rr, _ := NewRandomizedResponse(0.8, 3)
	r := prng.New(4)
	const n = 100000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[rr.Apply(0, r)]++
	}
	for j := 0; j < 3; j++ {
		got := float64(counts[j]) / n
		want := rr.ResponseProb(0, j)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P(resp=%d|true=0) = %v, want %v", j, got, want)
		}
	}
}

func TestEstimateDistributionRecovers(t *testing.T) {
	// True distribution is skewed; estimation must recover it from the
	// randomized responses far better than the raw response frequencies do.
	rr, _ := NewRandomizedResponse(0.4, 4)
	r := prng.New(5)
	truth := []float64{0.6, 0.25, 0.1, 0.05}
	const n = 200000
	observed := make([]int, 4)
	sample := func() int {
		u := r.Float64()
		acc := 0.0
		for i, p := range truth {
			acc += p
			if u < acc {
				return i
			}
		}
		return len(truth) - 1
	}
	for i := 0; i < n; i++ {
		observed[rr.Apply(sample(), r)]++
	}
	est, err := rr.EstimateDistribution(observed)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.IsDistribution(est, 1e-9) {
		t.Fatalf("estimate is not a distribution: %v", est)
	}
	raw := make([]float64, 4)
	for j, c := range observed {
		raw[j] = float64(c) / n
	}
	dEst, _ := stats.L1(truth, est)
	dRaw, _ := stats.L1(truth, raw)
	if dEst > 0.03 {
		t.Errorf("estimated distribution L1 error %v too large (est %v)", dEst, est)
	}
	if dEst >= dRaw {
		t.Errorf("estimation (%v) no better than raw responses (%v)", dEst, dRaw)
	}
}

func TestEstimateDistributionErrors(t *testing.T) {
	rr, _ := NewRandomizedResponse(0.5, 3)
	if _, err := rr.EstimateDistribution([]int{1, 2}); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := rr.EstimateDistribution([]int{1, -2, 3}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := rr.EstimateDistribution([]int{0, 0, 0}); err == nil {
		t.Error("empty observations accepted")
	}
	zero := RandomizedResponse{Keep: 0, Card: 3}
	if _, err := zero.EstimateDistribution([]int{1, 1, 1}); err == nil {
		t.Error("keep=0 accepted")
	}
}
