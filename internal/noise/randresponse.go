package noise

import (
	"fmt"

	"ppdm/internal/prng"
	"ppdm/internal/stats"
)

// RandomizedResponse implements Warner-style randomized response for a
// categorical attribute with Card possible codes: the true code is reported
// with probability Keep, otherwise a code drawn uniformly from all Card
// codes is reported. This is the categorical counterpart of the paper's
// value distortion and is provided as an extension.
type RandomizedResponse struct {
	Keep float64 // probability of reporting the true code
	Card int     // number of category codes
}

// NewRandomizedResponse validates keep in [0,1] and card >= 2.
func NewRandomizedResponse(keep float64, card int) (RandomizedResponse, error) {
	if keep < 0 || keep > 1 {
		return RandomizedResponse{}, fmt.Errorf("noise: keep probability %v not in [0,1]", keep)
	}
	if card < 2 {
		return RandomizedResponse{}, fmt.Errorf("noise: randomized response needs >= 2 categories, got %d", card)
	}
	return RandomizedResponse{Keep: keep, Card: card}, nil
}

// Apply perturbs one category code. It panics if v is out of range.
func (rr RandomizedResponse) Apply(v int, r *prng.Source) int {
	if v < 0 || v >= rr.Card {
		panic(fmt.Sprintf("noise: randomized response code %d out of [0,%d)", v, rr.Card))
	}
	if r.Bernoulli(rr.Keep) {
		return v
	}
	return r.Intn(rr.Card)
}

// ResponseProb returns P(report = j | true = i).
func (rr RandomizedResponse) ResponseProb(i, j int) float64 {
	p := (1 - rr.Keep) / float64(rr.Card)
	if i == j {
		p += rr.Keep
	}
	return p
}

// EstimateDistribution inverts the response channel: given observed counts
// of reported codes, it estimates the distribution of true codes. The
// channel matrix is p·I + (1−p)/card·J, whose inverse applied to the
// observed frequencies gives (obs_j − (1−p)/card) / p; estimates are clamped
// to be non-negative and renormalized. Keep == 0 carries no information and
// is rejected.
func (rr RandomizedResponse) EstimateDistribution(observed []int) ([]float64, error) {
	if len(observed) != rr.Card {
		return nil, fmt.Errorf("noise: observed counts have %d entries, want %d", len(observed), rr.Card)
	}
	if rr.Keep == 0 {
		return nil, fmt.Errorf("noise: keep probability 0 destroys all information")
	}
	n := 0
	for _, c := range observed {
		if c < 0 {
			return nil, fmt.Errorf("noise: negative observed count %d", c)
		}
		n += c
	}
	if n == 0 {
		return nil, fmt.Errorf("noise: no observations")
	}
	background := (1 - rr.Keep) / float64(rr.Card)
	est := make([]float64, rr.Card)
	for j, c := range observed {
		est[j] = (float64(c)/float64(n) - background) / rr.Keep
		if est[j] < 0 {
			est[j] = 0
		}
	}
	stats.Normalize(est)
	return est, nil
}
