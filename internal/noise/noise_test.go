package noise

import (
	"math"
	"testing"
	"testing/quick"

	"ppdm/internal/prng"
)

func TestUniformValidation(t *testing.T) {
	for _, a := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewUniform(a); err == nil {
			t.Errorf("NewUniform(%v) succeeded", a)
		}
	}
	if _, err := NewUniform(2.5); err != nil {
		t.Errorf("NewUniform(2.5) failed: %v", err)
	}
}

func TestGaussianValidation(t *testing.T) {
	for _, s := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewGaussian(s); err == nil {
			t.Errorf("NewGaussian(%v) succeeded", s)
		}
	}
}

func TestUniformDensityCDF(t *testing.T) {
	u, _ := NewUniform(2)
	if d := u.Density(0); math.Abs(d-0.25) > 1e-12 {
		t.Errorf("Density(0) = %v, want 0.25", d)
	}
	if d := u.Density(3); d != 0 {
		t.Errorf("Density(3) = %v, want 0", d)
	}
	cases := []struct{ y, want float64 }{
		{-3, 0}, {-2, 0}, {0, 0.5}, {1, 0.75}, {2, 1}, {5, 1},
	}
	for _, c := range cases {
		if got := u.CDF(c.y); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", c.y, got, c.want)
		}
	}
}

func TestGaussianDensityCDF(t *testing.T) {
	g, _ := NewGaussian(1)
	if d := g.Density(0); math.Abs(d-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Errorf("standard normal density at 0 = %v", d)
	}
	if c := g.CDF(0); math.Abs(c-0.5) > 1e-12 {
		t.Errorf("CDF(0) = %v, want 0.5", c)
	}
	if c := g.CDF(1.959963985); math.Abs(c-0.975) > 1e-6 {
		t.Errorf("CDF(1.96) = %v, want 0.975", c)
	}
	// symmetry
	if d := g.CDF(-1) + g.CDF(1); math.Abs(d-1) > 1e-12 {
		t.Errorf("CDF symmetry broken: %v", d)
	}
}

func TestConfidenceWidths(t *testing.T) {
	u, _ := NewUniform(10)
	// 95% of a uniform [-10,10] lies within [-9.5, 9.5]: width 19.
	if w := u.ConfidenceWidth(0.95); math.Abs(w-19) > 1e-12 {
		t.Errorf("uniform ConfidenceWidth = %v, want 19", w)
	}
	g, _ := NewGaussian(1)
	// 95% of N(0,1) lies within ±1.96: width 3.92.
	if w := g.ConfidenceWidth(0.95); math.Abs(w-3.919928) > 1e-4 {
		t.Errorf("gaussian ConfidenceWidth = %v, want 3.92", w)
	}
}

func TestConfidenceWidthEmpirical(t *testing.T) {
	// The nominal confidence width must actually contain ~conf of samples.
	r := prng.New(3)
	for _, m := range []Model{Uniform{Alpha: 5}, Gaussian{Sigma: 2}} {
		const n = 100000
		const conf = 0.9
		half := m.ConfidenceWidth(conf) / 2
		in := 0
		for i := 0; i < n; i++ {
			if math.Abs(m.Sample(r)) <= half {
				in++
			}
		}
		got := float64(in) / n
		if math.Abs(got-conf) > 0.01 {
			t.Errorf("%s: empirical confidence %v, want %v", m.Name(), got, conf)
		}
	}
}

func TestPrivacyLevelRoundTrip(t *testing.T) {
	f := func(levelRaw, widthRaw, confRaw uint16) bool {
		level := 0.05 + float64(levelRaw%400)/100 // 0.05 .. 4.04
		width := 1 + float64(widthRaw%10000)      // 1 .. 10000
		conf := 0.5 + float64(confRaw%49)/100     // 0.50 .. 0.98
		u, err := UniformForPrivacy(level, width, conf)
		if err != nil {
			return false
		}
		g, err := GaussianForPrivacy(level, width, conf)
		if err != nil {
			return false
		}
		return math.Abs(PrivacyLevel(u, width, conf)-level) < 1e-9 &&
			math.Abs(PrivacyLevel(g, width, conf)-level) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestForPrivacyValidation(t *testing.T) {
	bad := []struct{ level, width, conf float64 }{
		{0, 1, 0.95}, {-1, 1, 0.95}, {1, 0, 0.95}, {1, 1, 0}, {1, 1, 1}, {math.NaN(), 1, 0.95},
	}
	for _, c := range bad {
		if _, err := UniformForPrivacy(c.level, c.width, c.conf); err == nil {
			t.Errorf("UniformForPrivacy(%v,%v,%v) succeeded", c.level, c.width, c.conf)
		}
		if _, err := GaussianForPrivacy(c.level, c.width, c.conf); err == nil {
			t.Errorf("GaussianForPrivacy(%v,%v,%v) succeeded", c.level, c.width, c.conf)
		}
	}
	if _, err := ForPrivacy("cauchy", 1, 1, 0.95); err == nil {
		t.Error("unknown family accepted")
	}
	m, err := ForPrivacy("uniform", 1, 100, 0.95)
	if err != nil || m.Name() != "uniform" {
		t.Errorf("ForPrivacy(uniform) = %v, %v", m, err)
	}
	m, err = ForPrivacy("gaussian", 1, 100, 0.95)
	if err != nil || m.Name() != "gaussian" {
		t.Errorf("ForPrivacy(gaussian) = %v, %v", m, err)
	}
}

func TestPaperAlphaSigmaRelation(t *testing.T) {
	// At the same 95%-confidence privacy level, σ = 0.95/1.96 · α, i.e. the
	// Gaussian needs a smaller nominal spread than the uniform.
	u, _ := UniformForPrivacy(1, 100, 0.95)
	g, _ := GaussianForPrivacy(1, 100, 0.95)
	ratio := g.Sigma / u.Alpha
	want := 0.95 / 1.959963985
	if math.Abs(ratio-want) > 1e-6 {
		t.Errorf("sigma/alpha = %v, want %v", ratio, want)
	}
}

func TestSampleMomentsMatchModel(t *testing.T) {
	r := prng.New(9)
	u, _ := NewUniform(6)
	g, _ := NewGaussian(3)
	const n = 200000
	var su, sg, squ, sqg float64
	for i := 0; i < n; i++ {
		a, b := u.Sample(r), g.Sample(r)
		su += a
		sg += b
		squ += a * a
		sqg += b * b
	}
	if mean := su / n; math.Abs(mean) > 0.05 {
		t.Errorf("uniform noise mean = %v, want ~0", mean)
	}
	if mean := sg / n; math.Abs(mean) > 0.05 {
		t.Errorf("gaussian noise mean = %v, want ~0", mean)
	}
	// uniform variance = α²/3 = 12; gaussian variance = 9
	if v := squ / n; math.Abs(v-12) > 0.2 {
		t.Errorf("uniform noise variance = %v, want ~12", v)
	}
	if v := sqg / n; math.Abs(v-9) > 0.2 {
		t.Errorf("gaussian noise variance = %v, want ~9", v)
	}
}

// TestSupportRadii pins the Supporter contract for all three models: the
// uniform support is exact at any tail mass (including 0), unbounded models
// return +Inf at tail mass 0, and the quantile radii really contain all but
// tailMass of the mass (checked against the CDF).
func TestSupportRadii(t *testing.T) {
	u := Uniform{Alpha: 12}
	if u.Support(0) != 12 || u.Support(1e-3) != 12 {
		t.Errorf("uniform support = %v, %v; want exactly alpha", u.Support(0), u.Support(1e-3))
	}
	g := Gaussian{Sigma: 3}
	l := Laplace{B: 2}
	for _, m := range []Model{g, l} {
		sup := m.(Supporter)
		if !math.IsInf(sup.Support(0), 1) || !math.IsInf(sup.Support(-1), 1) {
			t.Errorf("%s: tailMass <= 0 should give +Inf", m.Name())
		}
		for _, tail := range []float64{1e-2, 1e-6, 1e-12} {
			r := sup.Support(tail)
			if !(r > 0) || math.IsInf(r, 0) {
				t.Fatalf("%s: Support(%g) = %v", m.Name(), tail, r)
			}
			outside := m.CDF(-r) + (1 - m.CDF(r))
			if outside > tail*1.001 { // erfinv/CDF round-trip is ~1e-4 relative at extreme tails
				t.Errorf("%s: Support(%g) = %v leaves %v mass outside", m.Name(), tail, r, outside)
			}
			// the radius is not wastefully loose: half the radius must leak
			// more than tailMass
			if half := m.CDF(-r/2) + (1 - m.CDF(r/2)); half <= tail {
				t.Errorf("%s: Support(%g) = %v is loose (half radius already within bound)", m.Name(), tail, r)
			}
		}
	}
	if z := g.Support(1); z != 0 {
		t.Errorf("gaussian Support(1) = %v, want 0", z)
	}
	if z := l.Support(1); z != 0 {
		t.Errorf("laplace Support(1) = %v, want 0", z)
	}
}

// TestSupportMonotonic checks that smaller tail masses give wider radii.
func TestSupportMonotonic(t *testing.T) {
	for _, sup := range []Supporter{Gaussian{Sigma: 5}, Laplace{B: 5}} {
		prev := 0.0
		for _, tail := range []float64{1e-1, 1e-3, 1e-6, 1e-9} {
			r := sup.Support(tail)
			if r <= prev {
				t.Fatalf("support not monotone: Support(%g) = %v after %v", tail, r, prev)
			}
			prev = r
		}
	}
}
