package noise

import (
	"math"
	"testing"

	"ppdm/internal/dataset"
	"ppdm/internal/stats"
	"ppdm/internal/synth"
)

func genTable(t *testing.T, n int) *dataset.Table {
	t.Helper()
	tb, err := synth.Generate(synth.Config{Function: synth.F2, N: n, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestPerturbTableValidation(t *testing.T) {
	tb := genTable(t, 10)
	if _, err := PerturbTable(tb, map[int]Model{99: Uniform{Alpha: 1}}, 1); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if _, err := PerturbTable(tb, map[int]Model{0: nil}, 1); err == nil {
		t.Error("nil model accepted")
	}
}

func TestPerturbTableBasics(t *testing.T) {
	tb := genTable(t, 2000)
	models := map[int]Model{
		synth.AttrAge:    Uniform{Alpha: 10},
		synth.AttrSalary: Gaussian{Sigma: 5000},
	}
	pt, err := PerturbTable(tb, models, 77)
	if err != nil {
		t.Fatal(err)
	}
	if pt.N() != tb.N() {
		t.Fatalf("perturbed table has %d records, want %d", pt.N(), tb.N())
	}
	changedAge := 0
	for i := 0; i < tb.N(); i++ {
		// labels and untouched attributes are preserved
		if pt.Label(i) != tb.Label(i) {
			t.Fatal("labels changed by perturbation")
		}
		if pt.Row(i)[synth.AttrLoan] != tb.Row(i)[synth.AttrLoan] {
			t.Fatal("unlisted attribute was perturbed")
		}
		d := pt.Row(i)[synth.AttrAge] - tb.Row(i)[synth.AttrAge]
		if math.Abs(d) > 10 {
			t.Fatalf("uniform noise beyond alpha: %v", d)
		}
		if d != 0 {
			changedAge++
		}
	}
	if changedAge < tb.N()*9/10 {
		t.Errorf("only %d/%d ages perturbed", changedAge, tb.N())
	}
	// original table untouched
	orig := genTable(t, 2000)
	for i := 0; i < tb.N(); i++ {
		if tb.Row(i)[synth.AttrAge] != orig.Row(i)[synth.AttrAge] {
			t.Fatal("PerturbTable mutated its input")
		}
	}
}

func TestPerturbTableDeterminism(t *testing.T) {
	tb := genTable(t, 100)
	models := map[int]Model{synth.AttrAge: Gaussian{Sigma: 4}}
	a, _ := PerturbTable(tb, models, 5)
	b, _ := PerturbTable(tb, models, 5)
	c, _ := PerturbTable(tb, models, 6)
	diff56 := false
	for i := 0; i < tb.N(); i++ {
		if a.Row(i)[synth.AttrAge] != b.Row(i)[synth.AttrAge] {
			t.Fatal("same seed produced different perturbations")
		}
		if a.Row(i)[synth.AttrAge] != c.Row(i)[synth.AttrAge] {
			diff56 = true
		}
	}
	if !diff56 {
		t.Fatal("different seeds produced identical perturbations")
	}
}

func TestPerturbationNoiseMoments(t *testing.T) {
	tb := genTable(t, 50000)
	models := map[int]Model{synth.AttrSalary: Uniform{Alpha: 30000}}
	pt, _ := PerturbTable(tb, models, 9)
	var sum, sumsq float64
	for i := 0; i < tb.N(); i++ {
		d := pt.Row(i)[synth.AttrSalary] - tb.Row(i)[synth.AttrSalary]
		sum += d
		sumsq += d * d
	}
	n := float64(tb.N())
	if mean := sum / n; math.Abs(mean) > 300 {
		t.Errorf("noise mean = %v, want ~0", mean)
	}
	want := 30000.0 * 30000 / 3
	if v := sumsq / n; math.Abs(v-want)/want > 0.03 {
		t.Errorf("noise variance = %v, want ~%v", v, want)
	}
}

func TestModelsForAllAttrs(t *testing.T) {
	s := synth.Schema()
	models, err := ModelsForAllAttrs(s, "gaussian", 0.5, DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != s.NumAttrs() {
		t.Fatalf("got %d models, want %d", len(models), s.NumAttrs())
	}
	// each model's privacy level must equal the requested level for its
	// attribute's own width
	for j, m := range models {
		level := PrivacyLevel(m, s.Attrs[j].Width(), DefaultConfidence)
		if math.Abs(level-0.5) > 1e-9 {
			t.Errorf("attr %d: privacy level %v, want 0.5", j, level)
		}
	}
	if _, err := ModelsForAllAttrs(s, "bogus", 0.5, DefaultConfidence); err == nil {
		t.Error("bogus family accepted")
	}
}

func TestModelsForAttrs(t *testing.T) {
	s := synth.Schema()
	models, err := ModelsForAttrs(s, []int{synth.AttrAge, synth.AttrSalary}, "uniform", 1, DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("got %d models", len(models))
	}
	if _, err := ModelsForAttrs(s, []int{-1}, "uniform", 1, DefaultConfidence); err == nil {
		t.Error("negative index accepted")
	}
}

func TestDiscretizeTable(t *testing.T) {
	tb := genTable(t, 500)
	dt, err := DiscretizeTable(tb, []int{synth.AttrAge}, 6)
	if err != nil {
		t.Fatal(err)
	}
	// age domain [20, 80], 6 bins of width 10: midpoints 25,35,...,75
	seen := map[float64]bool{}
	for i := 0; i < dt.N(); i++ {
		v := dt.Row(i)[synth.AttrAge]
		seen[v] = true
		valid := false
		for m := 25.0; m <= 75; m += 10 {
			if v == m {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("discretized age %v is not an interval midpoint", v)
		}
		// discretization error bounded by half the interval width
		if math.Abs(v-tb.Row(i)[synth.AttrAge]) > 5 {
			t.Fatalf("discretization moved value by more than half-width")
		}
	}
	if len(seen) < 4 {
		t.Errorf("only %d distinct midpoints used", len(seen))
	}
	if _, err := DiscretizeTable(tb, []int{0}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := DiscretizeTable(tb, []int{77}, 4); err == nil {
		t.Error("bad attribute accepted")
	}
}

func TestDiscretizeClampsOutOfDomain(t *testing.T) {
	s := dataset.MustSchema([]dataset.Attribute{dataset.NumericAttr("x", 0, 10)}, []string{"a", "b"})
	tb := dataset.NewTable(s)
	_ = tb.Append([]float64{-5}, 0)
	_ = tb.Append([]float64{15}, 1)
	dt, err := DiscretizeTable(tb, []int{0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Row(0)[0] != 1 { // first bin midpoint
		t.Errorf("below-domain clamped to %v, want 1", dt.Row(0)[0])
	}
	if dt.Row(1)[0] != 9 { // last bin midpoint
		t.Errorf("above-domain clamped to %v, want 9", dt.Row(1)[0])
	}
}

func TestPerturbedDistributionWidens(t *testing.T) {
	// Sanity for the reconstruction experiments: perturbation visibly
	// flattens the empirical distribution.
	tb := genTable(t, 20000)
	w := synth.Schema().Attrs[synth.AttrAge].Width()
	m, _ := GaussianForPrivacy(1.0, w, DefaultConfidence)
	pt, _ := PerturbTable(tb, map[int]Model{synth.AttrAge: m}, 3)

	h1 := stats.MustHistogram(20, 80, 20)
	h2 := stats.MustHistogram(20, 80, 20)
	if err := h1.AddAll(tb.Column(synth.AttrAge)); err != nil {
		t.Fatal(err)
	}
	if err := h2.AddAll(pt.Column(synth.AttrAge)); err != nil {
		t.Fatal(err)
	}
	// original age is uniform; perturbed mass should pile into the clamped
	// edge bins, increasing the max-bin probability
	p1, p2 := h1.Probabilities(), h2.Probabilities()
	max1, max2 := 0.0, 0.0
	for i := range p1 {
		if p1[i] > max1 {
			max1 = p1[i]
		}
		if p2[i] > max2 {
			max2 = p2[i]
		}
	}
	if max2 <= max1 {
		t.Errorf("perturbation did not visibly change the distribution (max %v vs %v)", max2, max1)
	}
}
