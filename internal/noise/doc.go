// Package noise implements the paper's value-distortion operators (§2) and
// the arithmetic that connects noise parameters to privacy levels.
//
// The paper perturbs a sensitive value x to x + y where y is drawn from a
// publicly known zero-mean distribution — uniform on [-α, +α] or Gaussian
// with standard deviation σ. Privacy is quantified by confidence intervals
// (§2.2): noise provides privacy level P (a fraction of the attribute's
// domain width W) at confidence c if the shortest interval containing a
// fraction c of the noise mass has width P·W. The paper reports privacy at
// 95% confidence; the conversion helpers here accept any confidence in
// (0, 1).
//
// The package also provides the paper's value-class-membership operator
// (discretization to interval midpoints, §2.1) and, as extensions, Laplace
// noise (the local differential-privacy mechanism) and Warner's randomized
// response for categorical attributes.
//
// Perturbation comes in two shapes: PerturbTable transforms a materialized
// table in parallel, and PerturbStream perturbs record batches as they flow
// (the paper's collection model — each record is randomized before it
// reaches the server) with O(batch) memory. Both draw chunk c's noise from
// the c-th substream of the seed over the fixed PerturbChunk grid, so the
// outputs are byte-identical to each other at any worker count and batch
// size.
package noise
