package noise

import (
	"fmt"
	"math"

	"ppdm/internal/prng"
)

// DefaultConfidence is the confidence level at which the paper quotes
// privacy numbers.
const DefaultConfidence = 0.95

// Model is an additive, zero-mean noise distribution. Implementations must
// be immutable values so they can be shared freely.
type Model interface {
	// Name identifies the model family ("uniform", "gaussian").
	Name() string
	// Sample draws one noise value using r.
	Sample(r *prng.Source) float64
	// Density returns the probability density f_Y(y).
	Density(y float64) float64
	// CDF returns the cumulative distribution F_Y(y).
	CDF(y float64) float64
	// ConfidenceWidth returns the width of the centered interval that
	// contains a fraction conf of the noise mass.
	ConfidenceWidth(conf float64) float64
}

// Supporter is an optional Model extension for band-limited consumers: a
// model that can bound its support reports the radius beyond which (almost)
// no noise mass lies. The reconstruction kernel uses it to store transition
// matrices as narrow bands instead of dense rows; models that do not
// implement it are treated as having unbounded support.
type Supporter interface {
	// Support returns a radius R such that at most tailMass of the noise
	// probability mass lies outside [-R, R]. Models with genuinely bounded
	// support return the exact radius even at tailMass = 0; unbounded models
	// return +Inf when tailMass <= 0.
	Support(tailMass float64) float64
}

// Uniform is additive noise distributed uniformly on [-Alpha, +Alpha].
type Uniform struct{ Alpha float64 }

// NewUniform validates alpha > 0.
func NewUniform(alpha float64) (Uniform, error) {
	if !(alpha > 0) || math.IsInf(alpha, 0) || math.IsNaN(alpha) {
		return Uniform{}, fmt.Errorf("noise: uniform alpha must be positive and finite, got %v", alpha)
	}
	return Uniform{Alpha: alpha}, nil
}

// Name implements Model.
func (u Uniform) Name() string { return "uniform" }

// Sample implements Model.
func (u Uniform) Sample(r *prng.Source) float64 { return r.Uniform(-u.Alpha, u.Alpha) }

// Density implements Model.
func (u Uniform) Density(y float64) float64 {
	if y < -u.Alpha || y > u.Alpha {
		return 0
	}
	return 1 / (2 * u.Alpha)
}

// CDF implements Model.
func (u Uniform) CDF(y float64) float64 {
	switch {
	case y <= -u.Alpha:
		return 0
	case y >= u.Alpha:
		return 1
	default:
		return (y + u.Alpha) / (2 * u.Alpha)
	}
}

// ConfidenceWidth implements Model: the centered interval [-cα, +cα] holds
// fraction c of the mass, so the width is 2cα.
func (u Uniform) ConfidenceWidth(conf float64) float64 { return 2 * conf * u.Alpha }

// Support implements Supporter: the support is exactly [-α, +α] for any
// tail mass, including 0.
func (u Uniform) Support(tailMass float64) float64 { return u.Alpha }

// Gaussian is additive noise distributed N(0, Sigma²).
type Gaussian struct{ Sigma float64 }

// NewGaussian validates sigma > 0.
func NewGaussian(sigma float64) (Gaussian, error) {
	if !(sigma > 0) || math.IsInf(sigma, 0) || math.IsNaN(sigma) {
		return Gaussian{}, fmt.Errorf("noise: gaussian sigma must be positive and finite, got %v", sigma)
	}
	return Gaussian{Sigma: sigma}, nil
}

// Name implements Model.
func (g Gaussian) Name() string { return "gaussian" }

// Sample implements Model.
func (g Gaussian) Sample(r *prng.Source) float64 { return r.Gaussian(0, g.Sigma) }

// Density implements Model.
func (g Gaussian) Density(y float64) float64 {
	z := y / g.Sigma
	return math.Exp(-z*z/2) / (g.Sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Model.
func (g Gaussian) CDF(y float64) float64 {
	return 0.5 * (1 + math.Erf(y/(g.Sigma*math.Sqrt2)))
}

// ConfidenceWidth implements Model: 2·z·σ where z is the (1+conf)/2 standard
// normal quantile (z ≈ 1.96 at 95%).
func (g Gaussian) ConfidenceWidth(conf float64) float64 {
	return 2 * normalQuantile(conf) * g.Sigma
}

// Support implements Supporter: P(|Y| > z·σ) = tailMass at the two-sided
// quantile z = √2·erfinv(1−tailMass). The support is unbounded, so
// tailMass <= 0 yields +Inf.
func (g Gaussian) Support(tailMass float64) float64 {
	if !(tailMass > 0) {
		return math.Inf(1)
	}
	if tailMass >= 1 {
		return 0
	}
	return normalQuantile(1-tailMass) * g.Sigma
}

// normalQuantile returns z such that P(|Z| <= z) = conf for standard normal Z.
func normalQuantile(conf float64) float64 {
	return math.Sqrt2 * math.Erfinv(conf)
}

// checkLevelConf validates the shared arguments of the ForPrivacy
// constructors.
func checkLevelConf(level, width, conf float64) error {
	if !(level > 0) || math.IsInf(level, 0) || math.IsNaN(level) {
		return fmt.Errorf("noise: privacy level must be positive, got %v", level)
	}
	if !(width > 0) || math.IsInf(width, 0) || math.IsNaN(width) {
		return fmt.Errorf("noise: domain width must be positive, got %v", width)
	}
	if !(conf > 0 && conf < 1) {
		return fmt.Errorf("noise: confidence must be in (0,1), got %v", conf)
	}
	return nil
}

// UniformForPrivacy returns the uniform model that provides the given
// privacy level (fraction of domain width, e.g. 1.0 for the paper's "100%
// privacy") at the given confidence: α = level·width / (2·conf).
func UniformForPrivacy(level, width, conf float64) (Uniform, error) {
	if err := checkLevelConf(level, width, conf); err != nil {
		return Uniform{}, err
	}
	return NewUniform(level * width / (2 * conf))
}

// GaussianForPrivacy returns the Gaussian model that provides the given
// privacy level at the given confidence: σ = level·width / (2·z(conf)).
func GaussianForPrivacy(level, width, conf float64) (Gaussian, error) {
	if err := checkLevelConf(level, width, conf); err != nil {
		return Gaussian{}, err
	}
	return NewGaussian(level * width / (2 * normalQuantile(conf)))
}

// PrivacyLevel returns the privacy level (fraction of the domain width)
// that the model provides at the given confidence; the inverse of the
// ForPrivacy constructors.
func PrivacyLevel(m Model, width, conf float64) float64 {
	return m.ConfidenceWidth(conf) / width
}

// ForPrivacy builds a model of the named family ("uniform", "gaussian", or
// "laplace") at the given privacy level and confidence.
func ForPrivacy(family string, level, width, conf float64) (Model, error) {
	switch family {
	case "uniform":
		return UniformForPrivacy(level, width, conf)
	case "gaussian":
		return GaussianForPrivacy(level, width, conf)
	case "laplace":
		return LaplaceForPrivacy(level, width, conf)
	default:
		return nil, fmt.Errorf("noise: unknown model family %q", family)
	}
}
