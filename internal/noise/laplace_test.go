package noise

import (
	"math"
	"testing"

	"ppdm/internal/prng"
)

func TestNewLaplaceValidation(t *testing.T) {
	for _, b := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewLaplace(b); err == nil {
			t.Errorf("NewLaplace(%v) accepted", b)
		}
	}
	if _, err := NewLaplace(3); err != nil {
		t.Errorf("NewLaplace(3) rejected: %v", err)
	}
}

func TestLaplaceDensityCDF(t *testing.T) {
	l, _ := NewLaplace(2)
	if d := l.Density(0); math.Abs(d-0.25) > 1e-12 {
		t.Errorf("Density(0) = %v, want 0.25", d)
	}
	// symmetry
	if math.Abs(l.Density(3)-l.Density(-3)) > 1e-12 {
		t.Error("density not symmetric")
	}
	if c := l.CDF(0); math.Abs(c-0.5) > 1e-12 {
		t.Errorf("CDF(0) = %v, want 0.5", c)
	}
	if d := l.CDF(-1) + l.CDF(1); math.Abs(d-1) > 1e-12 {
		t.Errorf("CDF symmetry broken: %v", d)
	}
	// CDF consistent with density by finite differences
	for _, y := range []float64{-5, -1, 0.5, 4} {
		const h = 1e-6
		grad := (l.CDF(y+h) - l.CDF(y-h)) / (2 * h)
		if math.Abs(grad-l.Density(y)) > 1e-6 {
			t.Errorf("CDF' (%v) = %v != density %v", y, grad, l.Density(y))
		}
	}
}

func TestLaplaceSampleMoments(t *testing.T) {
	l, _ := NewLaplace(4)
	r := prng.New(7)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := l.Sample(r)
		sum += v
		sumsq += v * v
	}
	if mean := sum / n; math.Abs(mean) > 0.05 {
		t.Errorf("laplace mean = %v, want ~0", mean)
	}
	// Var = 2b² = 32
	if v := sumsq / n; math.Abs(v-32)/32 > 0.03 {
		t.Errorf("laplace variance = %v, want ~32", v)
	}
}

func TestLaplaceConfidenceWidth(t *testing.T) {
	l, _ := NewLaplace(1)
	// P(|Y| <= t) = 0.95 -> t = -ln(0.05) ≈ 2.9957; width ≈ 5.9915
	if w := l.ConfidenceWidth(0.95); math.Abs(w-5.9915) > 1e-3 {
		t.Errorf("ConfidenceWidth(0.95) = %v, want ~5.99", w)
	}
	// empirical check
	r := prng.New(8)
	const n = 100000
	half := l.ConfidenceWidth(0.9) / 2
	in := 0
	for i := 0; i < n; i++ {
		if math.Abs(l.Sample(r)) <= half {
			in++
		}
	}
	if got := float64(in) / n; math.Abs(got-0.9) > 0.01 {
		t.Errorf("empirical confidence %v, want 0.9", got)
	}
}

func TestLaplaceForPrivacyRoundTrip(t *testing.T) {
	l, err := LaplaceForPrivacy(1.0, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lvl := PrivacyLevel(l, 100, 0.95); math.Abs(lvl-1.0) > 1e-9 {
		t.Errorf("privacy round trip = %v, want 1", lvl)
	}
	if _, err := LaplaceForPrivacy(0, 100, 0.95); err == nil {
		t.Error("level 0 accepted")
	}
}

func TestLaplaceEpsilonCalibration(t *testing.T) {
	l, err := LaplaceForEpsilon(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if l.B != 50 {
		t.Errorf("b = %v, want 50", l.B)
	}
	if eps := l.Epsilon(100); math.Abs(eps-2) > 1e-12 {
		t.Errorf("Epsilon = %v, want 2", eps)
	}
	for _, bad := range []struct{ eps, w float64 }{{0, 1}, {-1, 1}, {1, 0}, {math.NaN(), 1}, {1, math.Inf(1)}} {
		if _, err := LaplaceForEpsilon(bad.eps, bad.w); err == nil {
			t.Errorf("LaplaceForEpsilon(%v,%v) accepted", bad.eps, bad.w)
		}
	}
}

func TestForPrivacyLaplaceFamily(t *testing.T) {
	m, err := ForPrivacy("laplace", 0.5, 100, 0.95)
	if err != nil || m.Name() != "laplace" {
		t.Fatalf("ForPrivacy(laplace) = %v, %v", m, err)
	}
}

// The DP guarantee in miniature: for neighbouring values x, x' the density
// ratio of observing any output w is bounded by exp(ε·|x−x'|/W).
func TestLaplaceDPRatioBound(t *testing.T) {
	const width = 100.0
	const eps = 1.0
	l, _ := LaplaceForEpsilon(eps, width)
	for _, w := range []float64{-50, 0, 30, 120} {
		for _, x1 := range []float64{0, 40, 100} {
			for _, x2 := range []float64{0, 55, 100} {
				ratio := l.Density(w-x1) / l.Density(w-x2)
				bound := math.Exp(eps * math.Abs(x1-x2) / width)
				if ratio > bound*(1+1e-9) {
					t.Fatalf("density ratio %v exceeds DP bound %v (w=%v x1=%v x2=%v)", ratio, bound, w, x1, x2)
				}
			}
		}
	}
}
