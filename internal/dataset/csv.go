package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the table as CSV: a header row with attribute names plus a
// final "class" column holding class names, then one row per record.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, t.schema.NumAttrs()+1)
	for _, a := range t.schema.Attrs {
		header = append(header, a.Name)
	}
	header = append(header, "class")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	row := make([]string, len(header))
	for i := 0; i < t.N(); i++ {
		for j, v := range t.rows[i] {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		row[len(row)-1] = t.schema.Classes[t.labels[i]]
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing CSV record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table in the format produced by WriteCSV. The header is
// validated against the schema: it must list the schema's attribute names in
// order, followed by "class". Unknown class names and malformed numbers are
// reported with their record number.
func ReadCSV(r io.Reader, s *Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = s.NumAttrs() + 1

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	for j, a := range s.Attrs {
		if header[j] != a.Name {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, schema expects %q", j, header[j], a.Name)
		}
	}
	if header[len(header)-1] != "class" {
		return nil, fmt.Errorf("dataset: CSV last column is %q, expected \"class\"", header[len(header)-1])
	}

	t := NewTable(s)
	values := make([]float64, s.NumAttrs())
	for rec := 1; ; rec++ {
		row, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV record %d: %w", rec, err)
		}
		for j := 0; j < s.NumAttrs(); j++ {
			v, err := strconv.ParseFloat(row[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV record %d attribute %q: %w", rec, s.Attrs[j].Name, err)
			}
			values[j] = v
		}
		label := s.ClassIndex(row[len(row)-1])
		if label < 0 {
			return nil, fmt.Errorf("dataset: CSV record %d has unknown class %q", rec, row[len(row)-1])
		}
		if err := t.Append(values, label); err != nil {
			return nil, fmt.Errorf("dataset: CSV record %d: %w", rec, err)
		}
	}
}
