package dataset

import (
	"errors"
	"fmt"
	"math"
)

// Kind distinguishes numeric (continuous/ordinal) from categorical
// attributes.
type Kind int

const (
	// Numeric attributes take real values in a closed domain [Lo, Hi].
	Numeric Kind = iota
	// Categorical attributes take integer codes 0..Cardinality-1.
	Categorical
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one column of a table.
type Attribute struct {
	Name string
	Kind Kind

	// Lo and Hi bound the domain of a numeric attribute. For categorical
	// attributes they are 0 and Cardinality-1 for convenience.
	Lo, Hi float64

	// Cardinality is the number of distinct codes of a categorical
	// attribute; 0 for numeric attributes.
	Cardinality int

	// Step is the granularity of a numeric attribute: 0 for continuous
	// values, 1 for integer-valued (ordinal) attributes, and so on.
	// Partition-based algorithms must not split the domain finer than Step
	// — reconstructing a 5-valued attribute over 20 intervals turns the
	// deconvolution ill-conditioned.
	Step float64
}

// NumericAttr returns a numeric attribute on [lo, hi].
func NumericAttr(name string, lo, hi float64) Attribute {
	return Attribute{Name: name, Kind: Numeric, Lo: lo, Hi: hi}
}

// IntegerAttr returns a numeric attribute that only takes integer values in
// [lo, hi] (Step = 1).
func IntegerAttr(name string, lo, hi float64) Attribute {
	a := NumericAttr(name, lo, hi)
	a.Step = 1
	return a
}

// CategoricalAttr returns a categorical attribute with codes 0..card-1.
func CategoricalAttr(name string, card int) Attribute {
	return Attribute{Name: name, Kind: Categorical, Lo: 0, Hi: float64(card - 1), Cardinality: card, Step: 1}
}

// Width returns the width of the attribute's domain (Hi − Lo). The paper's
// privacy levels are expressed as a percentage of this width.
func (a Attribute) Width() float64 { return a.Hi - a.Lo }

// Validate reports whether the attribute definition is internally
// consistent.
func (a Attribute) Validate() error {
	if a.Name == "" {
		return errors.New("dataset: attribute has empty name")
	}
	switch a.Kind {
	case Numeric:
		if math.IsNaN(a.Lo) || math.IsNaN(a.Hi) || math.IsInf(a.Lo, 0) || math.IsInf(a.Hi, 0) {
			return fmt.Errorf("dataset: attribute %q has non-finite bounds", a.Name)
		}
		if !(a.Hi > a.Lo) {
			return fmt.Errorf("dataset: attribute %q has empty domain [%v, %v]", a.Name, a.Lo, a.Hi)
		}
		if a.Step < 0 || math.IsNaN(a.Step) || a.Step > a.Hi-a.Lo {
			return fmt.Errorf("dataset: attribute %q has invalid step %v", a.Name, a.Step)
		}
	case Categorical:
		if a.Cardinality < 2 {
			return fmt.Errorf("dataset: categorical attribute %q needs cardinality >= 2, got %d", a.Name, a.Cardinality)
		}
	default:
		return fmt.Errorf("dataset: attribute %q has unknown kind %d", a.Name, int(a.Kind))
	}
	return nil
}

// Intervals caps a requested interval count k at the attribute's natural
// resolution: an attribute with Step > 0 has at most Width/Step + 1 distinct
// values, and partitioning finer than that makes distribution
// reconstruction ill-conditioned. Continuous attributes (Step == 0) return
// k unchanged.
func (a Attribute) Intervals(k int) int {
	if a.Step <= 0 {
		return k
	}
	steps := int(a.Width()/a.Step) + 1
	if steps < 2 {
		steps = 2
	}
	if steps < k {
		return steps
	}
	return k
}

// Contains reports whether v is inside the attribute's domain (and, for
// categorical attributes, an integral code).
func (a Attribute) Contains(v float64) bool {
	if math.IsNaN(v) {
		return false
	}
	if a.Kind == Categorical {
		return v == math.Trunc(v) && v >= 0 && int(v) < a.Cardinality
	}
	return v >= a.Lo && v <= a.Hi
}

// Schema is an ordered set of attributes plus the class-label vocabulary.
type Schema struct {
	Attrs   []Attribute
	Classes []string // class code i is named Classes[i]

	byName map[string]int
}

// NewSchema validates the attribute list and class names and returns a
// Schema. Attribute names must be unique and there must be at least two
// classes.
func NewSchema(attrs []Attribute, classes []string) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, errors.New("dataset: schema needs at least one attribute")
	}
	if len(classes) < 2 {
		return nil, errors.New("dataset: schema needs at least two classes")
	}
	byName := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if _, dup := byName[a.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		byName[a.Name] = i
	}
	seen := make(map[string]bool, len(classes))
	for _, c := range classes {
		if c == "" {
			return nil, errors.New("dataset: empty class name")
		}
		if seen[c] {
			return nil, fmt.Errorf("dataset: duplicate class name %q", c)
		}
		seen[c] = true
	}
	return &Schema{
		Attrs:   append([]Attribute(nil), attrs...),
		Classes: append([]string(nil), classes...),
		byName:  byName,
	}, nil
}

// MustSchema is NewSchema that panics on error; for constant schemas.
func MustSchema(attrs []Attribute, classes []string) *Schema {
	s, err := NewSchema(attrs, classes)
	if err != nil {
		panic(err)
	}
	return s
}

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// NumClasses returns the number of classes.
func (s *Schema) NumClasses() int { return len(s.Classes) }

// AttrIndex returns the index of the named attribute.
func (s *Schema) AttrIndex(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// ClassIndex returns the code of the named class, or -1.
func (s *Schema) ClassIndex(name string) int {
	for i, c := range s.Classes {
		if c == name {
			return i
		}
	}
	return -1
}
