// Package dataset implements the tabular-data substrate used by the
// reproduction: typed schemas, in-memory record tables, class labels, random
// splits, and CSV interchange. It corresponds to the data model the SIGMOD
// 2000 paper assumes throughout — fixed-schema records of sensitive numeric
// attributes plus a class label (§1, §5.1) — and carries no algorithmic
// logic of its own.
//
// A record is a fixed-length []float64 plus an integer class label.
// Categorical attributes are stored as float64-encoded small integers; their
// schema entry records the cardinality so downstream code (perturbation,
// discretization, tree induction) can treat them correctly. Attribute
// domains record a Step granularity so partition-based algorithms never
// split finer than the data's natural resolution.
//
// Tables materialize every record in memory; for tables larger than memory
// the same records can flow through the pipeline as batches via
// internal/stream, which shares this package's schema and CSV conventions.
package dataset
