package dataset

import (
	"fmt"
	"math"

	"ppdm/internal/prng"
)

// Table is an in-memory collection of records sharing one Schema.
// The zero value is not usable; construct with NewTable.
type Table struct {
	schema *Schema
	rows   [][]float64
	labels []int
}

// NewTable returns an empty table over the given schema.
func NewTable(s *Schema) *Table {
	if s == nil {
		panic("dataset: NewTable with nil schema")
	}
	return &Table{schema: s}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// N returns the number of records.
func (t *Table) N() int { return len(t.rows) }

// Append adds one record. The values slice is copied. It returns an error
// if the record length or label is inconsistent with the schema, or if any
// value is NaN/Inf. Values outside an attribute's declared domain are
// accepted: perturbed records legitimately escape the domain.
func (t *Table) Append(values []float64, label int) error {
	if len(values) != t.schema.NumAttrs() {
		return fmt.Errorf("dataset: record has %d values, schema has %d attributes", len(values), t.schema.NumAttrs())
	}
	if label < 0 || label >= t.schema.NumClasses() {
		return fmt.Errorf("dataset: label %d out of range [0,%d)", label, t.schema.NumClasses())
	}
	for j, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dataset: attribute %q has non-finite value %v", t.schema.Attrs[j].Name, v)
		}
	}
	t.rows = append(t.rows, append([]float64(nil), values...))
	t.labels = append(t.labels, label)
	return nil
}

// NewTableFromDense builds a table over s from a dense row-major values
// slice (length n·NumAttrs) and n labels, applying the same validation as
// Append. The rows alias values' storage — ownership transfers to the table
// and the caller must not reuse the slice. This is the bulk-ingest path for
// generators that fill a flat buffer in parallel; it performs no per-record
// allocation or copying.
func NewTableFromDense(s *Schema, values []float64, labels []int) (*Table, error) {
	t := NewTable(s)
	nAttrs := s.NumAttrs()
	if len(values) != len(labels)*nAttrs {
		return nil, fmt.Errorf("dataset: %d values for %d records of %d attributes", len(values), len(labels), nAttrs)
	}
	for j, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("dataset: record %d attribute %q has non-finite value %v", j/nAttrs, s.Attrs[j%nAttrs].Name, v)
		}
	}
	for i, l := range labels {
		if l < 0 || l >= s.NumClasses() {
			return nil, fmt.Errorf("dataset: record %d label %d out of range [0,%d)", i, l, s.NumClasses())
		}
	}
	t.rows = make([][]float64, len(labels))
	for i := range t.rows {
		// Full slice expressions cap each row so a later append cannot
		// clobber its neighbour.
		t.rows[i] = values[i*nAttrs : (i+1)*nAttrs : (i+1)*nAttrs]
	}
	t.labels = append([]int(nil), labels...)
	return t, nil
}

// Row returns record i's values. The returned slice aliases the table's
// storage; callers must not modify it (use RowCopy to mutate).
func (t *Table) Row(i int) []float64 { return t.rows[i] }

// RowCopy returns an independent copy of record i's values.
func (t *Table) RowCopy(i int) []float64 {
	return append([]float64(nil), t.rows[i]...)
}

// Label returns record i's class code.
func (t *Table) Label(i int) int { return t.labels[i] }

// SetValue overwrites one cell; used by perturbation, which transforms
// tables in place on copies.
func (t *Table) SetValue(i, j int, v float64) { t.rows[i][j] = v }

// Column returns a copy of column j across all records.
func (t *Table) Column(j int) []float64 {
	out := make([]float64, len(t.rows))
	for i, r := range t.rows {
		out[i] = r[j]
	}
	return out
}

// ColumnForClass returns a copy of column j restricted to records of the
// given class, along with the original row indices of those records.
func (t *Table) ColumnForClass(j, class int) (values []float64, rowIdx []int) {
	for i, r := range t.rows {
		if t.labels[i] == class {
			values = append(values, r[j])
			rowIdx = append(rowIdx, i)
		}
	}
	return values, rowIdx
}

// ClassCounts returns the number of records of each class.
func (t *Table) ClassCounts() []int {
	counts := make([]int, t.schema.NumClasses())
	for _, l := range t.labels {
		counts[l]++
	}
	return counts
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := &Table{
		schema: t.schema,
		rows:   make([][]float64, len(t.rows)),
		labels: append([]int(nil), t.labels...),
	}
	for i, r := range t.rows {
		c.rows[i] = append([]float64(nil), r...)
	}
	return c
}

// Subset returns a new table containing the records at the given indices
// (deep-copied), in order.
func (t *Table) Subset(idx []int) (*Table, error) {
	out := NewTable(t.schema)
	for _, i := range idx {
		if i < 0 || i >= len(t.rows) {
			return nil, fmt.Errorf("dataset: subset index %d out of range [0,%d)", i, len(t.rows))
		}
		if err := out.Append(t.rows[i], t.labels[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Split randomly partitions the table into a training table with
// round(frac·N) records and a test table with the rest, using r for the
// permutation. frac must be in (0, 1).
func (t *Table) Split(frac float64, r *prng.Source) (train, test *Table, err error) {
	if !(frac > 0 && frac < 1) {
		return nil, nil, fmt.Errorf("dataset: split fraction %v not in (0,1)", frac)
	}
	perm := r.Perm(t.N())
	nTrain := int(math.Round(frac * float64(t.N())))
	train, err = t.Subset(perm[:nTrain])
	if err != nil {
		return nil, nil, err
	}
	test, err = t.Subset(perm[nTrain:])
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

// Shuffle permutes the records in place.
func (t *Table) Shuffle(r *prng.Source) {
	r.Shuffle(t.N(), func(i, j int) {
		t.rows[i], t.rows[j] = t.rows[j], t.rows[i]
		t.labels[i], t.labels[j] = t.labels[j], t.labels[i]
	})
}

// CheckDomains verifies that every stored value lies inside its attribute's
// declared domain; used by tests and by callers ingesting untrusted CSV.
func (t *Table) CheckDomains() error {
	for i, r := range t.rows {
		for j, v := range r {
			if !t.schema.Attrs[j].Contains(v) {
				return fmt.Errorf("dataset: record %d attribute %q value %v outside domain", i, t.schema.Attrs[j].Name, v)
			}
		}
	}
	return nil
}
