package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ppdm/internal/prng"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		[]Attribute{
			NumericAttr("age", 20, 80),
			NumericAttr("salary", 20000, 150000),
			CategoricalAttr("elevel", 5),
		},
		[]string{"B", "A"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name    string
		attrs   []Attribute
		classes []string
	}{
		{"no attrs", nil, []string{"A", "B"}},
		{"one class", []Attribute{NumericAttr("x", 0, 1)}, []string{"A"}},
		{"dup attr", []Attribute{NumericAttr("x", 0, 1), NumericAttr("x", 0, 2)}, []string{"A", "B"}},
		{"dup class", []Attribute{NumericAttr("x", 0, 1)}, []string{"A", "A"}},
		{"empty class", []Attribute{NumericAttr("x", 0, 1)}, []string{"A", ""}},
		{"empty attr name", []Attribute{NumericAttr("", 0, 1)}, []string{"A", "B"}},
		{"empty domain", []Attribute{NumericAttr("x", 1, 1)}, []string{"A", "B"}},
		{"nan bound", []Attribute{NumericAttr("x", math.NaN(), 1)}, []string{"A", "B"}},
		{"card 1", []Attribute{CategoricalAttr("x", 1)}, []string{"A", "B"}},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.attrs, c.classes); err == nil {
			t.Errorf("%s: NewSchema succeeded, want error", c.name)
		}
	}
}

func TestSchemaLookups(t *testing.T) {
	s := testSchema(t)
	if i, ok := s.AttrIndex("salary"); !ok || i != 1 {
		t.Errorf("AttrIndex(salary) = %d, %v", i, ok)
	}
	if _, ok := s.AttrIndex("nope"); ok {
		t.Error("AttrIndex(nope) found")
	}
	if s.ClassIndex("A") != 1 || s.ClassIndex("B") != 0 || s.ClassIndex("C") != -1 {
		t.Error("ClassIndex wrong")
	}
	if s.NumAttrs() != 3 || s.NumClasses() != 2 {
		t.Error("schema dims wrong")
	}
}

func TestAttributeContains(t *testing.T) {
	num := NumericAttr("x", 0, 10)
	if !num.Contains(0) || !num.Contains(10) || num.Contains(-0.1) || num.Contains(math.NaN()) {
		t.Error("numeric Contains wrong")
	}
	cat := CategoricalAttr("c", 3)
	if !cat.Contains(0) || !cat.Contains(2) || cat.Contains(3) || cat.Contains(1.5) {
		t.Error("categorical Contains wrong")
	}
	if num.Width() != 10 {
		t.Error("Width wrong")
	}
}

func TestAppendValidation(t *testing.T) {
	tb := NewTable(testSchema(t))
	if err := tb.Append([]float64{30, 50000}, 0); err == nil {
		t.Error("short record accepted")
	}
	if err := tb.Append([]float64{30, 50000, 2}, 5); err == nil {
		t.Error("bad label accepted")
	}
	if err := tb.Append([]float64{30, math.NaN(), 2}, 0); err == nil {
		t.Error("NaN accepted")
	}
	if err := tb.Append([]float64{30, math.Inf(1), 2}, 0); err == nil {
		t.Error("Inf accepted")
	}
	if err := tb.Append([]float64{30, 50000, 2}, 1); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	// out-of-domain values are allowed (perturbed data)
	if err := tb.Append([]float64{-500, 50000, 2}, 0); err != nil {
		t.Errorf("out-of-domain record rejected: %v", err)
	}
	if tb.N() != 2 {
		t.Errorf("N = %d", tb.N())
	}
}

func TestAppendCopiesValues(t *testing.T) {
	tb := NewTable(testSchema(t))
	vals := []float64{30, 50000, 2}
	if err := tb.Append(vals, 0); err != nil {
		t.Fatal(err)
	}
	vals[0] = 999
	if tb.Row(0)[0] != 30 {
		t.Error("Append did not copy values")
	}
}

func TestColumnAndClassViews(t *testing.T) {
	tb := NewTable(testSchema(t))
	must := func(vals []float64, label int) {
		t.Helper()
		if err := tb.Append(vals, label); err != nil {
			t.Fatal(err)
		}
	}
	must([]float64{30, 1000, 0}, 0)
	must([]float64{40, 2000, 1}, 1)
	must([]float64{50, 3000, 2}, 0)

	col := tb.Column(0)
	if len(col) != 3 || col[0] != 30 || col[2] != 50 {
		t.Errorf("Column = %v", col)
	}
	vals, idx := tb.ColumnForClass(0, 0)
	if len(vals) != 2 || vals[0] != 30 || vals[1] != 50 || idx[0] != 0 || idx[1] != 2 {
		t.Errorf("ColumnForClass = %v, %v", vals, idx)
	}
	counts := tb.ClassCounts()
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("ClassCounts = %v", counts)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tb := NewTable(testSchema(t))
	_ = tb.Append([]float64{30, 1000, 0}, 0)
	c := tb.Clone()
	c.SetValue(0, 0, 77)
	if tb.Row(0)[0] != 30 {
		t.Error("Clone aliases original")
	}
}

func TestSubset(t *testing.T) {
	tb := NewTable(testSchema(t))
	for i := 0; i < 5; i++ {
		_ = tb.Append([]float64{float64(20 + i), 1000, 0}, i%2)
	}
	sub, err := tb.Subset([]int{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 2 || sub.Row(0)[0] != 24 || sub.Row(1)[0] != 20 {
		t.Errorf("Subset wrong: %v", sub.rows)
	}
	if _, err := tb.Subset([]int{99}); err == nil {
		t.Error("out-of-range subset accepted")
	}
}

func TestSplit(t *testing.T) {
	tb := NewTable(testSchema(t))
	for i := 0; i < 100; i++ {
		_ = tb.Append([]float64{float64(i%60 + 20), 1000, 0}, i%2)
	}
	train, test, err := tb.Split(0.8, prng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if train.N() != 80 || test.N() != 20 {
		t.Errorf("split sizes %d/%d", train.N(), test.N())
	}
	if _, _, err := tb.Split(0, prng.New(1)); err == nil {
		t.Error("Split(0) accepted")
	}
	if _, _, err := tb.Split(1, prng.New(1)); err == nil {
		t.Error("Split(1) accepted")
	}
}

func TestShufflePreservesRecordLabelPairs(t *testing.T) {
	tb := NewTable(testSchema(t))
	for i := 0; i < 50; i++ {
		// encode the label in the value so we can verify pairing
		_ = tb.Append([]float64{float64(i), float64(i % 2), 0}, i%2)
	}
	tb.Shuffle(prng.New(9))
	for i := 0; i < tb.N(); i++ {
		if int(tb.Row(i)[1]) != tb.Label(i) {
			t.Fatal("Shuffle broke record/label pairing")
		}
	}
}

func TestCheckDomains(t *testing.T) {
	tb := NewTable(testSchema(t))
	_ = tb.Append([]float64{30, 50000, 2}, 0)
	if err := tb.CheckDomains(); err != nil {
		t.Errorf("valid domains flagged: %v", err)
	}
	_ = tb.Append([]float64{30, 50000, 2.5}, 0) // non-integral categorical
	if err := tb.CheckDomains(); err == nil {
		t.Error("invalid categorical not flagged")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := NewTable(testSchema(t))
	_ = tb.Append([]float64{30.25, 50000, 2}, 0)
	_ = tb.Append([]float64{45, 149999.5, 4}, 1)

	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, tb.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != tb.N() {
		t.Fatalf("round trip N = %d", back.N())
	}
	for i := 0; i < tb.N(); i++ {
		if back.Label(i) != tb.Label(i) {
			t.Fatalf("label %d changed", i)
		}
		for j := range tb.Row(i) {
			if back.Row(i)[j] != tb.Row(i)[j] {
				t.Fatalf("value (%d,%d) changed: %v != %v", i, j, back.Row(i)[j], tb.Row(i)[j])
			}
		}
	}
}

// Property: CSV round-trips arbitrary finite values exactly.
func TestCSVRoundTripProperty(t *testing.T) {
	schema := MustSchema(
		[]Attribute{NumericAttr("x", -1e6, 1e6), NumericAttr("y", -1e6, 1e6)},
		[]string{"neg", "pos"},
	)
	f := func(seed uint64, nRaw uint8) bool {
		r := prng.New(seed)
		n := int(nRaw%40) + 1
		tb := NewTable(schema)
		for i := 0; i < n; i++ {
			vals := []float64{r.Uniform(-1e6, 1e6), r.Gaussian(0, 1e4)}
			if err := tb.Append(vals, r.Intn(2)); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := tb.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf, schema)
		if err != nil || back.N() != tb.N() {
			return false
		}
		for i := 0; i < tb.N(); i++ {
			if back.Label(i) != tb.Label(i) {
				return false
			}
			for j := range tb.Row(i) {
				if back.Row(i)[j] != tb.Row(i)[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := testSchema(t)
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "foo,salary,elevel,class\n"},
		{"missing class col", "age,salary,elevel,notclass\n"},
		{"bad float", "age,salary,elevel,class\nxyz,1,2,A\n"},
		{"unknown class", "age,salary,elevel,class\n30,1,2,Z\n"},
		{"short row", "age,salary,elevel,class\n30,1,A\n"},
		{"nan value", "age,salary,elevel,class\nNaN,1,2,A\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), s); err == nil {
			t.Errorf("%s: ReadCSV succeeded, want error", c.name)
		}
	}
}

func TestNewTableFromDense(t *testing.T) {
	s := MustSchema([]Attribute{NumericAttr("x", 0, 10), NumericAttr("y", 0, 10)}, []string{"a", "b"})
	tb, err := NewTableFromDense(s, []float64{1, 2, 3, 4, 5, 6}, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if tb.N() != 3 || tb.Row(1)[0] != 3 || tb.Row(2)[1] != 6 || tb.Label(1) != 1 {
		t.Fatalf("dense table misassembled: %v", tb)
	}
	// appending afterwards must not clobber neighbouring rows
	if err := tb.Append([]float64{7, 8}, 0); err != nil {
		t.Fatal(err)
	}
	if tb.Row(2)[0] != 5 || tb.Row(3)[0] != 7 {
		t.Fatal("append after dense construction corrupted rows")
	}
	if _, err := NewTableFromDense(s, []float64{1, 2, 3}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewTableFromDense(s, []float64{1, math.NaN()}, []int{0}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := NewTableFromDense(s, []float64{1, 2}, []int{5}); err == nil {
		t.Error("out-of-range label accepted")
	}
}
