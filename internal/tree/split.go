package tree

import "ppdm/internal/parallel"

// split describes a candidate binary split: attribute attr, records with
// interval index <= cut go left.
type split struct {
	attr, cut int
	gain      float64
}

// findBestSplit evaluates every (attribute, boundary) candidate with the
// gini index and returns the best; attr is -1 if no candidate satisfies the
// MinLeaf constraint. Only boundaries inside the attribute's feasible span
// are considered.
//
// Attributes are searched in parallel (bounded by workers) and their
// per-attribute winners reduced in ascending attribute order with a
// strictly-greater comparison — the same tie-breaking (lowest attribute,
// then lowest cut) as a serial attr-major/cut-minor scan, so the chosen
// split is independent of the worker count.
// slotScratch holds one reusable Values buffer per worker slot (its length
// must cover parallel.Workers(workers)); the caller owns it across calls so
// the buffers amortize over a subtree. Errors can only originate from
// columnar storage (disk reads of a spilled attribute list).
func findBestSplit(src Source, rows []int, spans []Span, parentCounts []int, minLeaf, workers int, slotScratch [][]int) (split, error) {
	k := src.NumClasses()
	n := len(rows)
	parent := make([]float64, k)
	for c, v := range parentCounts {
		parent[c] = float64(v)
	}
	parentGini := giniOf(parent, float64(n))

	// Parallelizing tiny nodes costs more in scheduling than it saves —
	// below the threshold the search runs inline on one goroutine. The
	// shortcut is skipped for DistribSource: its per-attribute work is a
	// full per-class reconstruction, expensive at any node size.
	const parallelMinRows = 2048
	_, isDistrib := src.(DistribSource)
	if n < parallelMinRows && !isDistrib {
		workers = 1
	}
	results := make([]split, src.NumAttrs())
	err := parallel.ForEachSlot(src.NumAttrs(), workers, func(slot, attr int) error {
		s, err := bestSplitForAttr(src, attr, rows, spans[attr], parentGini, minLeaf, &slotScratch[slot])
		results[attr] = s
		return err
	})
	if err != nil {
		return split{attr: -1}, err
	}

	best := split{attr: -1}
	for _, s := range results {
		if s.attr < 0 {
			continue
		}
		if s.gain > best.gain || (s.gain == best.gain && best.attr == -1) {
			best = s
		}
	}
	return best, nil
}

// bestSplitForAttr finds the best boundary of one attribute.
//
// Per-interval class masses are fractional: they come from walking the
// attribute's columnar list (ColumnSource), from counting Values (one pass
// over the rows, for row-pull sources), or, when the source implements
// DistribSource, from the source's own per-node distribution estimate (the
// paper's Local mode). The best boundary is then found by a prefix scan, so
// the cost per attribute is O(rows + bins·classes). All three fills produce
// identical masses for identical assignments — integer unit increments are
// exact in float64 — so promoting a source to ColumnSource never changes
// the tree.
func bestSplitForAttr(src Source, attr int, rows []int, span Span, parentGini float64, minLeaf int, valsBuf *[]int) (split, error) {
	best := split{attr: -1}
	if span.Count() < 2 {
		return best, nil
	}
	k := src.NumClasses()
	bins := src.Bins(attr)
	// counts[b*k+c] = mass of class c in interval b
	counts := make([]float64, bins*k)
	filled := false
	if ds, hasDistrib := src.(DistribSource); hasDistrib {
		if dist, ok := ds.NodeDistributions(attr, rows, span); ok {
			for c := range dist {
				for b, v := range dist[c] {
					counts[b*k+c] = v
				}
			}
			filled = true
		}
	}
	if !filled {
		if cs, isColumnar := src.(ColumnSource); isColumnar {
			if err := colCounts(cs.AttrList(attr), rows, cs.Labels(), k, counts); err != nil {
				return best, err
			}
		} else {
			vals := src.Values(attr, rows, span, *valsBuf)
			*valsBuf = vals
			for i, r := range rows {
				counts[vals[i]*k+src.Label(r)]++
			}
		}
	}
	// total mass and per-class totals of this attribute's estimate (may
	// differ slightly from the record counts when fractional)
	attrTotals := make([]float64, k)
	var attrN float64
	for b := 0; b < bins; b++ {
		for c := 0; c < k; c++ {
			attrTotals[c] += counts[b*k+c]
			attrN += counts[b*k+c]
		}
	}
	// prefix scan over boundaries: left = intervals span.Lo..cut
	left := make([]float64, k)
	var nLeft float64
	for cut := span.Lo; cut < span.Hi; cut++ {
		for c := 0; c < k; c++ {
			left[c] += counts[cut*k+c]
			nLeft += counts[cut*k+c]
		}
		nRight := attrN - nLeft
		if nLeft < float64(minLeaf) || nRight < float64(minLeaf) {
			continue
		}
		gl := giniOf(left, nLeft)
		gr := giniOfRight(attrTotals, left, nRight)
		weighted := (nLeft*gl + nRight*gr) / attrN
		gain := parentGini - weighted
		if gain > best.gain || (gain == best.gain && best.attr == -1) {
			best = split{attr: attr, cut: cut, gain: gain}
		}
	}
	return best, nil
}

func giniOf(counts []float64, n float64) float64 {
	if n <= 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / n
		g -= p * p
	}
	return g
}

// giniOfRight computes gini of (totals − left) without materializing the
// slice.
func giniOfRight(totals, left []float64, n float64) float64 {
	if n <= 0 {
		return 0
	}
	g := 1.0
	for c := range totals {
		p := (totals[c] - left[c]) / n
		g -= p * p
	}
	return g
}
