package tree

import (
	"errors"
	"fmt"
)

// SegLen is the fixed length of one attribute-list segment. Every column is
// addressed on the same SegLen grid — segment s of any attribute holds the
// interval indices of global rows [s·SegLen, (s+1)·SegLen) — so a node's
// sorted rowID list walks all lists segment-sequentially. The value matches
// stream.DefaultBatchSize so streamed ingestion fills whole segments.
const SegLen = 8192

// AttrList is one attribute's columnar list: the interval index of every
// record in global row order, exposed in fixed-size segments.
//
// The split search reads segments for different attributes concurrently, so
// implementations must be safe for concurrent Segment calls; the returned
// slice must stay valid until the caller moves to another segment (callers
// never retain it longer, so cache-backed implementations may recycle
// storage once the caller is done — in practice: let the garbage collector
// handle eviction, never overwrite a returned slice in place).
type AttrList interface {
	// Len returns the number of values in the list (= number of records).
	Len() int
	// Segment returns the values of rows [seg·SegLen, min((seg+1)·SegLen,
	// Len())). It errors only on storage failure (disk-backed lists).
	Segment(seg int) ([]uint32, error)
}

// ColumnSource is an optional refinement of Source implemented by columnar
// (attribute-list) sources. When a source implements it, Grow runs the
// columnar engine: per-node class histograms accumulate directly from the
// attribute lists' segments, and node partitioning joins rowIDs against a
// bitmap of the winning attribute — the row-pull Values path is never used.
//
// Columnar values must be exact: unlike Values, the engine does not clamp
// into the feasible span, relying on the invariant that rows were routed to
// a node by these very values (true for any static assignment).
type ColumnSource interface {
	Source
	// AttrList returns attribute attr's columnar list.
	AttrList(attr int) AttrList
	// Labels returns the class list, indexed by global rowID. The slice
	// aliases the source's storage; callers must not modify it.
	Labels() []int
}

// MemAttrList is an AttrList over one memory-resident column, stored
// contiguously at 4 bytes per value.
type MemAttrList struct {
	vals []uint32
}

// NewMemAttrList validates a column of interval indices against its bin
// count and packs it into a memory-resident attribute list.
func NewMemAttrList(col []int, bins int) (*MemAttrList, error) {
	if bins < 1 {
		return nil, fmt.Errorf("tree: attribute list needs >= 1 bin, got %d", bins)
	}
	vals := make([]uint32, len(col))
	for i, v := range col {
		if v < 0 || v >= bins {
			return nil, fmt.Errorf("tree: value %d of row %d outside [0,%d)", v, i, bins)
		}
		vals[i] = uint32(v)
	}
	return &MemAttrList{vals: vals}, nil
}

// Len implements AttrList.
func (l *MemAttrList) Len() int { return len(l.vals) }

// Segment implements AttrList by slicing the resident column.
func (l *MemAttrList) Segment(seg int) ([]uint32, error) {
	lo := seg * SegLen
	if seg < 0 || lo >= len(l.vals) {
		return nil, fmt.Errorf("tree: segment %d outside column of %d values", seg, len(l.vals))
	}
	hi := lo + SegLen
	if hi > len(l.vals) {
		hi = len(l.vals)
	}
	return l.vals[lo:hi], nil
}

// bitmap marks rowIDs during node partitioning. It is scratch owned by one
// grow task: parallel subtrees each carry their own, so no two tasks share
// words even though their row sets interleave.
type bitmap []uint64

// newBitmap returns a bitmap covering rows [0, n).
func newBitmap(n int) bitmap { return make(bitmap, (n+63)/64) }

func (b bitmap) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitmap) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// clearRows zeroes every word touched by the (ascending) row list, leaving
// the bitmap ready for reuse without an O(n) sweep.
func (b bitmap) clearRows(rows []int) {
	for _, r := range rows {
		b[r>>6] = 0
	}
}

// colCounts accumulates counts[bin·k+class] for the node's records from one
// attribute list. rows must be ascending (they always are: the root is
// 0..n-1 and partitioning preserves order), so each segment is fetched once
// and walked in order. The increments are exact integer additions in
// float64, hence independent of accumulation order.
func colCounts(list AttrList, rows []int, labels []int, k int, counts []float64) error {
	for i := 0; i < len(rows); {
		base := (rows[i] / SegLen) * SegLen
		vals, err := list.Segment(rows[i] / SegLen)
		if err != nil {
			return err
		}
		end := base + SegLen
		for ; i < len(rows) && rows[i] < end; i++ {
			r := rows[i]
			counts[int(vals[r-base])*k+labels[r]]++
		}
	}
	return nil
}

// partitionRows splits a node's rowID list on (attr value <= cut) using the
// winning attribute's list: pass 1 walks the list segment-sequentially and
// marks left-going rows in the bitmap; pass 2 joins the row list against the
// bitmap, preserving row order. This is SPRINT's hash-join of rowIDs with
// the probe table degenerated to a bitmap — every attribute list shares the
// global row order, so one join partitions the node for all attributes at
// once. The bitmap is caller-owned scratch covering all rows; it is returned
// cleared.
func partitionRows(list AttrList, rows []int, cut int, bits bitmap) (left, right []int, err error) {
	nLeft := 0
	for i := 0; i < len(rows); {
		base := (rows[i] / SegLen) * SegLen
		vals, err := list.Segment(rows[i] / SegLen)
		if err != nil {
			return nil, nil, err
		}
		end := base + SegLen
		for ; i < len(rows) && rows[i] < end; i++ {
			r := rows[i]
			if int(vals[r-base]) <= cut {
				bits.set(r)
				nLeft++
			}
		}
	}
	left = make([]int, 0, nLeft)
	right = make([]int, 0, len(rows)-nLeft)
	for _, r := range rows {
		if bits.get(r) {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	bits.clearRows(rows)
	return left, right, nil
}

// errNoColumns guards constructors that require at least one attribute.
var errNoColumns = errors.New("tree: source needs at least one attribute")
