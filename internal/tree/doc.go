// Package tree implements the decision-tree substrate of the reproduction: a
// gini-index classifier over interval-valued (discretized) attributes, with
// binary splits on interval boundaries, depth/size stopping rules, and
// optional pessimistic pruning — the SPRINT-lineage learner of Agrawal &
// Srikant's "Privacy-Preserving Data Mining" (SIGMOD 2000, §4/§5).
//
// # Data access: attribute lists, not rows
//
// Training data reaches the grower in the SPRINT-style columnar layout
// (Shafer, Agrawal & Mehta, VLDB 1996 — the scalable classifier the paper's
// learner descends from): one attribute list per column, holding every
// record's interval index in global row order, stored in fixed-size segments
// of SegLen values (AttrList). A node of the growing tree is just a sorted
// list of rowIDs; split search accumulates per-class interval histograms by
// walking each attribute's segments over those rowIDs, and a chosen split
// partitions the node by marking the winning attribute's left-going rows in
// a rowID bitmap and joining the row list against it. Because every
// attribute list shares the same global row order, that single bitmap join
// replaces SPRINT's per-attribute rid hash tables, and no per-node value
// extraction or column copying happens at all.
//
// Attribute lists are storage-agnostic: MemAttrList serves a memory-resident
// column, while SpillSource serves columns from gzipped on-disk segment
// files (written by internal/stream's segment codec) through a bounded
// cache, so out-of-core training holds only the class list, the live rowID
// lists, and a fixed budget of decompressed segments — never the table.
//
// # The Source contract and the paper's Local mode
//
// The generic Source interface (row-pull Values calls) remains the
// universal contract, because the paper's Local mode cannot be columnar: at
// every node it re-derives the interval distribution of each candidate
// attribute by running distribution reconstruction over just that node's
// perturbed values (DistribSource), exactly as §4 of the paper prescribes,
// and routes records through span-clamped fallback assignments. Sources
// that additionally implement ColumnSource — all static assignments:
// Original/Randomized baselines and the Global/ByClass reconstruction
// modes — are served by the columnar engine instead.
//
// # Parallelism and determinism
//
// Growth is parallel on two axes sharing one Config.Workers budget: within
// a node, candidate attributes are searched concurrently and their winners
// reduced in ascending attribute order (reproducing the serial scan's
// tie-breaking), and across the tree, left/right subtrees above the
// Config.SubtreeMinRows cutoff grow as independent fork-join tasks on
// internal/parallel (the per-node fan-out shrinks as subtree tasks occupy
// workers, so the axes compose instead of multiplying). Grown trees are bit-identical for every worker count:
// subtrees are data-independent, and Importance — the only cross-subtree
// accumulation — is folded by a deterministic pre-order walk after growth,
// reproducing the serial recursion's floating-point addition order exactly.
package tree
