package tree

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ppdm/internal/parallel"
)

// Default growth limits used when the corresponding Config field is zero.
const (
	DefaultMaxDepth = 30
	DefaultMinLeaf  = 5
	DefaultMinGain  = 1e-9
	// DefaultSubtreeMinRows is the subtree-parallelism cutoff: a child with
	// fewer records grows inline on its parent's goroutine, because the
	// task-submission cost would exceed the work.
	DefaultSubtreeMinRows = 4096
)

// Config controls tree growth. The zero value gives sensible defaults with
// pessimistic pruning enabled.
type Config struct {
	// MaxDepth limits tree depth (root has depth 0). 0 means DefaultMaxDepth.
	MaxDepth int
	// MinLeaf is the minimum number of records in each child of a split.
	// 0 means DefaultMinLeaf.
	MinLeaf int
	// MinGain is the minimum gini improvement required to split. 0 means
	// DefaultMinGain.
	MinGain float64
	// DisablePruning turns off the post-growth pessimistic pruning pass.
	DisablePruning bool
	// Workers bounds the growth parallelism; 0 means all cores. The two
	// axes — fork-join growth of left/right subtrees and the per-node
	// attribute split search — share the budget rather than multiplying
	// it: each node's attribute fan-out is throttled by the number of
	// subtree tasks currently in flight, keeping total concurrency near
	// Workers. Grown trees are bit-identical for every worker count: each
	// attribute's best split is found independently and the winners are
	// compared in ascending attribute order (reproducing the serial scan's
	// tie-breaking), subtrees are data-independent tasks, and Importance
	// is folded in a deterministic pre-order pass after growth.
	Workers int
	// SubtreeMinRows is the minimum number of records in BOTH children of
	// a split for the two subtrees to grow as parallel fork-join tasks —
	// the size cutoff below which recursion stays inline (which also caps
	// the forking depth, since node sizes shrink monotonically down any
	// path). 0 means DefaultSubtreeMinRows; negative disables subtree
	// parallelism entirely, leaving only the per-node attribute fan-out.
	// The grown tree is identical for every value.
	SubtreeMinRows int
}

func (c Config) withDefaults() Config {
	if c.MaxDepth == 0 {
		c.MaxDepth = DefaultMaxDepth
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = DefaultMinLeaf
	}
	if c.MinGain == 0 {
		c.MinGain = DefaultMinGain
	}
	if c.SubtreeMinRows == 0 {
		c.SubtreeMinRows = DefaultSubtreeMinRows
	}
	return c
}

func (c Config) validate() error {
	if c.MaxDepth < 0 {
		return fmt.Errorf("tree: MaxDepth %d must be non-negative", c.MaxDepth)
	}
	if c.MinLeaf < 0 {
		return fmt.Errorf("tree: MinLeaf %d must be non-negative", c.MinLeaf)
	}
	if c.MinGain < 0 {
		return fmt.Errorf("tree: MinGain %v must be non-negative", c.MinGain)
	}
	return nil
}

// Node is one decision-tree node. Leaves have Left == Right == nil.
type Node struct {
	// Attr and Cut define the split of an internal node: records with
	// interval index <= Cut on attribute Attr go left, the rest go right.
	Attr int
	Cut  int

	Left, Right *Node

	// Class is the majority class at this node (used when the node is a
	// leaf, and as a fallback during pruning).
	Class int
	// Counts holds the per-class record counts seen at this node during
	// training.
	Counts []int

	// gain is the gini gain of this node's split, kept until the
	// post-growth Importance fold (subtrees grow concurrently, so
	// accumulating during growth would order float additions by schedule).
	gain float64
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tree is a trained decision tree.
type Tree struct {
	Root       *Node
	NumAttrs   int
	NumClasses int

	// Importance[attr] accumulates the record-weighted gini gain of every
	// split on attr; a crude but useful attribute-relevance signal.
	Importance []float64
}

// Grow builds a tree from the source. Growth is deterministic: ties between
// equally good splits are broken toward the lower attribute index and lower
// cut, and the result is bit-identical for every worker count.
func Grow(src Source, cfg Config) (*Tree, error) {
	if src == nil {
		return nil, errors.New("tree: nil source")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if src.Len() == 0 {
		return nil, errors.New("tree: empty training set")
	}
	if src.NumAttrs() == 0 {
		return nil, errors.New("tree: source has no attributes")
	}
	t := &Tree{
		NumAttrs:   src.NumAttrs(),
		NumClasses: src.NumClasses(),
		Importance: make([]float64, src.NumAttrs()),
	}
	rows := make([]int, src.Len())
	for i := range rows {
		rows[i] = i
	}
	g := &grower{
		src:   src,
		cfg:   cfg,
		total: len(rows),
		fj:    parallel.NewForkJoin(cfg.Workers),
	}
	if cs, ok := src.(ColumnSource); ok {
		g.cols = cs
		g.labels = cs.Labels()
	}
	spans := make([]Span, src.NumAttrs())
	for a := range spans {
		spans[a] = Span{Lo: 0, Hi: src.Bins(a) - 1}
	}
	t.Root = g.grow(g.newTask(), rows, spans, 0)
	if err := g.err(); err != nil {
		return nil, err
	}
	// Fold Importance in pre-order — node, left subtree, right subtree —
	// which is exactly the addition order of a serial recursion, so the
	// totals are bit-identical at any worker count. The fold runs before
	// pruning on purpose: a split contributes even when later collapsed,
	// matching the learner's historical behaviour.
	g.foldImportance(t, t.Root)
	if !cfg.DisablePruning {
		prune(t.Root)
	}
	return t, nil
}

// grower holds the per-Grow state shared by all subtree tasks. Everything
// here is either immutable during growth or internally synchronized; all
// mutable scratch lives in growTask.
type grower struct {
	src    Source
	cols   ColumnSource // nil for row-pull sources (the paper's Local mode)
	labels []int        // cols.Labels(), hoisted out of the hot loops
	cfg    Config
	total  int
	fj     *parallel.ForkJoin

	// spawned counts subtree tasks currently running on their own
	// goroutines; the per-node attribute fan-out divides the Workers
	// budget by it so the two axes compose without oversubscription. The
	// count only throttles scheduling — results never depend on it.
	spawned atomic.Int64

	failed   atomic.Bool
	mu       sync.Mutex
	firstErr error
}

// growTask is the scratch of one growth goroutine: a spawned subtree gets a
// fresh task, an inline recursion reuses its parent's. valsBuf backs the
// serial partition step of row-pull sources, slotScratch the per-worker-slot
// Values buffers of the split search, and bits the rowID bitmap of columnar
// partitioning (lazily sized to the full row range; subtree row sets
// interleave, so tasks must not share words).
type growTask struct {
	valsBuf     []int
	slotScratch [][]int
	bits        bitmap
}

func (g *grower) newTask() *growTask {
	return &growTask{slotScratch: make([][]int, parallel.Workers(g.cfg.Workers))}
}

// attrWorkers returns this node's share of the Workers budget for the
// attribute split search: the full budget when growth is serial, shrinking
// as spawned subtree tasks occupy workers of their own.
func (g *grower) attrWorkers() int {
	w := parallel.Workers(g.cfg.Workers)
	share := w / (1 + int(g.spawned.Load()))
	if share < 1 {
		return 1
	}
	return share
}

// fail records the first error encountered; later growth short-circuits.
func (g *grower) fail(err error) {
	g.mu.Lock()
	if g.firstErr == nil {
		g.firstErr = err
	}
	g.mu.Unlock()
	g.failed.Store(true)
}

func (g *grower) err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.firstErr
}

func (g *grower) grow(t *growTask, rows []int, spans []Span, depth int) *Node {
	if g.failed.Load() {
		return nil
	}
	node := &Node{Counts: g.classCounts(rows)}
	node.Class = argmax(node.Counts)

	if depth >= g.cfg.MaxDepth || len(rows) < 2*g.cfg.MinLeaf || isPure(node.Counts) {
		return node
	}
	best, err := findBestSplit(g.src, rows, spans, node.Counts, g.cfg.MinLeaf, g.attrWorkers(), t.slotScratch)
	if err != nil {
		g.fail(err)
		return nil
	}
	if best.attr < 0 || best.gain < g.cfg.MinGain {
		return node
	}
	left, right, err := g.partition(t, rows, spans, best)
	if err != nil {
		g.fail(err)
		return nil
	}
	if len(left) < g.cfg.MinLeaf || len(right) < g.cfg.MinLeaf {
		return node
	}
	node.Attr = best.attr
	node.Cut = best.cut
	node.gain = best.gain * float64(len(rows)) / float64(g.total)

	// Children inherit the path constraints, narrowed by this split.
	leftSpans := append([]Span(nil), spans...)
	rightSpans := append([]Span(nil), spans...)
	leftSpans[best.attr].Hi = best.cut
	rightSpans[best.attr].Lo = best.cut + 1

	// Above the cutoff the two subtrees grow as fork-join tasks; the right
	// child runs on a spawned goroutine when a worker is free — with fresh
	// scratch, since it races the left child — and inline (after the left
	// child, reusing this task's scratch) otherwise. Below the cutoff,
	// recursion stays serial on this task. Either way the children are
	// computed from disjoint row sets with no shared mutable state, so the
	// result is schedule-free.
	if min := g.cfg.SubtreeMinRows; min >= 0 && len(left) >= min && len(right) >= min {
		g.fj.Do(
			func() { node.Left = g.grow(t, left, leftSpans, depth+1) },
			func(spawned bool) {
				rt := t
				if spawned {
					rt = g.newTask()
					g.spawned.Add(1)
					defer g.spawned.Add(-1)
				}
				node.Right = g.grow(rt, right, rightSpans, depth+1)
			},
		)
	} else {
		node.Left = g.grow(t, left, leftSpans, depth+1)
		node.Right = g.grow(t, right, rightSpans, depth+1)
	}
	return node
}

// partition routes the node's rows on the chosen split. Columnar sources
// partition by bitmap join against the winning attribute's list; row-pull
// sources re-fetch the winning attribute's assignments (with a static
// source this returns the same values evaluated during the search; with a
// Local source it recomputes the same deterministic reconstruction).
func (g *grower) partition(t *growTask, rows []int, spans []Span, best split) (left, right []int, err error) {
	if g.cols != nil {
		if t.bits == nil {
			t.bits = newBitmap(g.total)
		}
		return partitionRows(g.cols.AttrList(best.attr), rows, best.cut, t.bits)
	}
	vals := g.src.Values(best.attr, rows, spans[best.attr], t.valsBuf)
	t.valsBuf = vals
	for i, r := range rows {
		if vals[i] <= best.cut {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	return left, right, nil
}

// classCounts tallies the node's records per class, reading the hoisted
// class list when the source is columnar.
func (g *grower) classCounts(rows []int) []int {
	counts := make([]int, g.src.NumClasses())
	if g.labels != nil {
		for _, r := range rows {
			counts[g.labels[r]]++
		}
		return counts
	}
	for _, r := range rows {
		counts[g.src.Label(r)]++
	}
	return counts
}

// foldImportance walks the grown tree in pre-order, adding each split's
// stored gain into the per-attribute Importance totals.
func (g *grower) foldImportance(t *Tree, n *Node) {
	if n == nil || n.IsLeaf() {
		return
	}
	t.Importance[n.Attr] += n.gain
	g.foldImportance(t, n.Left)
	g.foldImportance(t, n.Right)
}

func isPure(counts []int) bool {
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

func argmax(counts []int) int {
	best, bestC := 0, -1
	for i, c := range counts {
		if c > bestC {
			best, bestC = i, c
		}
	}
	return best
}

// Predict classifies a record given its interval indices (one per
// attribute).
func (t *Tree) Predict(x []int) (int, error) {
	if len(x) != t.NumAttrs {
		return 0, fmt.Errorf("tree: record has %d attributes, tree expects %d", len(x), t.NumAttrs)
	}
	n := t.Root
	for !n.IsLeaf() {
		if x[n.Attr] <= n.Cut {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Class, nil
}

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int { return countNodes(t.Root) }

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return countLeaves(t.Root) }

// Depth returns the depth of the deepest leaf (root = 0).
func (t *Tree) Depth() int { return depthOf(t.Root) }

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.Left) + countNodes(n.Right)
}

func countLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

func depthOf(n *Node) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	l, r := depthOf(n.Left), depthOf(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}
