package tree

import (
	"errors"
	"fmt"

	"ppdm/internal/parallel"
)

// Default growth limits used when the corresponding Config field is zero.
const (
	DefaultMaxDepth = 30
	DefaultMinLeaf  = 5
	DefaultMinGain  = 1e-9
)

// Config controls tree growth. The zero value gives sensible defaults with
// pessimistic pruning enabled.
type Config struct {
	// MaxDepth limits tree depth (root has depth 0). 0 means DefaultMaxDepth.
	MaxDepth int
	// MinLeaf is the minimum number of records in each child of a split.
	// 0 means DefaultMinLeaf.
	MinLeaf int
	// MinGain is the minimum gini improvement required to split. 0 means
	// DefaultMinGain.
	MinGain float64
	// DisablePruning turns off the post-growth pessimistic pruning pass.
	DisablePruning bool
	// Workers bounds the parallelism of the per-node attribute split search;
	// 0 means all cores. Grown trees are bit-identical for every worker
	// count: each attribute's best split is found independently and the
	// winners are compared in ascending attribute order, reproducing the
	// serial scan's tie-breaking exactly.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MaxDepth == 0 {
		c.MaxDepth = DefaultMaxDepth
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = DefaultMinLeaf
	}
	if c.MinGain == 0 {
		c.MinGain = DefaultMinGain
	}
	return c
}

func (c Config) validate() error {
	if c.MaxDepth < 0 {
		return fmt.Errorf("tree: MaxDepth %d must be non-negative", c.MaxDepth)
	}
	if c.MinLeaf < 0 {
		return fmt.Errorf("tree: MinLeaf %d must be non-negative", c.MinLeaf)
	}
	if c.MinGain < 0 {
		return fmt.Errorf("tree: MinGain %v must be non-negative", c.MinGain)
	}
	return nil
}

// Node is one decision-tree node. Leaves have Left == Right == nil.
type Node struct {
	// Attr and Cut define the split of an internal node: records with
	// interval index <= Cut on attribute Attr go left, the rest go right.
	Attr int
	Cut  int

	Left, Right *Node

	// Class is the majority class at this node (used when the node is a
	// leaf, and as a fallback during pruning).
	Class int
	// Counts holds the per-class record counts seen at this node during
	// training.
	Counts []int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tree is a trained decision tree.
type Tree struct {
	Root       *Node
	NumAttrs   int
	NumClasses int

	// Importance[attr] accumulates the record-weighted gini gain of every
	// split on attr; a crude but useful attribute-relevance signal.
	Importance []float64
}

// Grow builds a tree from the source. Growth is deterministic: ties between
// equally good splits are broken toward the lower attribute index and lower
// cut.
func Grow(src Source, cfg Config) (*Tree, error) {
	if src == nil {
		return nil, errors.New("tree: nil source")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if src.Len() == 0 {
		return nil, errors.New("tree: empty training set")
	}
	if src.NumAttrs() == 0 {
		return nil, errors.New("tree: source has no attributes")
	}
	t := &Tree{
		NumAttrs:   src.NumAttrs(),
		NumClasses: src.NumClasses(),
		Importance: make([]float64, src.NumAttrs()),
	}
	rows := make([]int, src.Len())
	for i := range rows {
		rows[i] = i
	}
	g := &grower{
		src:         src,
		cfg:         cfg,
		tree:        t,
		total:       len(rows),
		slotScratch: make([][]int, parallel.Workers(cfg.Workers)),
	}
	spans := make([]Span, src.NumAttrs())
	for a := range spans {
		spans[a] = Span{Lo: 0, Hi: src.Bins(a) - 1}
	}
	t.Root = g.grow(rows, spans, 0)
	if !cfg.DisablePruning {
		prune(t.Root)
	}
	return t, nil
}

type grower struct {
	src   Source
	cfg   Config
	tree  *Tree
	total int

	// valsBuf is scratch for the serial partition step and slotScratch the
	// per-worker-slot Values buffers of the split search; the recursive
	// grow calls never overlap, so one set serves the whole tree.
	valsBuf     []int
	slotScratch [][]int
}

func (g *grower) grow(rows []int, spans []Span, depth int) *Node {
	node := &Node{Counts: classCounts(g.src, rows)}
	node.Class = argmax(node.Counts)

	if depth >= g.cfg.MaxDepth || len(rows) < 2*g.cfg.MinLeaf || isPure(node.Counts) {
		return node
	}
	best := findBestSplit(g.src, rows, spans, node.Counts, g.cfg.MinLeaf, g.cfg.Workers, g.slotScratch)
	if best.attr < 0 || best.gain < g.cfg.MinGain {
		return node
	}
	// Partition rows by re-fetching the winning attribute's assignments.
	// With a static source this returns the same values evaluated during
	// the search; with a Local source it recomputes the same deterministic
	// reconstruction.
	vals := g.src.Values(best.attr, rows, spans[best.attr], g.valsBuf)
	g.valsBuf = vals
	var left, right []int
	for i, r := range rows {
		if vals[i] <= best.cut {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < g.cfg.MinLeaf || len(right) < g.cfg.MinLeaf {
		return node
	}
	node.Attr = best.attr
	node.Cut = best.cut
	g.tree.Importance[best.attr] += best.gain * float64(len(rows)) / float64(g.total)

	// Children inherit the path constraints, narrowed by this split.
	leftSpans := append([]Span(nil), spans...)
	rightSpans := append([]Span(nil), spans...)
	leftSpans[best.attr].Hi = best.cut
	rightSpans[best.attr].Lo = best.cut + 1
	node.Left = g.grow(left, leftSpans, depth+1)
	node.Right = g.grow(right, rightSpans, depth+1)
	return node
}

func classCounts(src Source, rows []int) []int {
	counts := make([]int, src.NumClasses())
	for _, r := range rows {
		counts[src.Label(r)]++
	}
	return counts
}

func isPure(counts []int) bool {
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

func argmax(counts []int) int {
	best, bestC := 0, -1
	for i, c := range counts {
		if c > bestC {
			best, bestC = i, c
		}
	}
	return best
}

// Predict classifies a record given its interval indices (one per
// attribute).
func (t *Tree) Predict(x []int) (int, error) {
	if len(x) != t.NumAttrs {
		return 0, fmt.Errorf("tree: record has %d attributes, tree expects %d", len(x), t.NumAttrs)
	}
	n := t.Root
	for !n.IsLeaf() {
		if x[n.Attr] <= n.Cut {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Class, nil
}

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int { return countNodes(t.Root) }

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return countLeaves(t.Root) }

// Depth returns the depth of the deepest leaf (root = 0).
func (t *Tree) Depth() int { return depthOf(t.Root) }

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.Left) + countNodes(n.Right)
}

func countLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

func depthOf(n *Node) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	l, r := depthOf(n.Left), depthOf(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}
