package tree

import (
	"errors"
	"fmt"
	"math"
)

// flatNode is one node of a flattened tree: 16 bytes, so four nodes share a
// cache line and a root-to-leaf walk touches a handful of lines instead of
// pointer-chasing heap nodes allocated across the whole growth schedule.
// Children are index links: the left child of node i is node i+1 (pre-order
// layout — the hot "go left" direction is a sequential access), the right
// child is nodes[right].
type flatNode struct {
	attr  int32 // split attribute, or flatLeaf for a leaf
	cut   int32 // records with bins[attr] <= cut go left
	right int32 // index of the right child (left child is the next node)
	class int32 // majority class; the answer when the node is a leaf
}

// flatLeaf marks a leaf in flatNode.attr.
const flatLeaf = int32(-1)

// FlatClassifier is a decision tree packed into one contiguous node array
// for cache-friendly classification. It is immutable after Flatten and safe
// for concurrent use. Predictions are identical to walking the pointer tree
// it was flattened from: same splits, same tie-breaks, same leaves.
type FlatClassifier struct {
	nodes    []flatNode
	numAttrs int
}

// Flatten packs the tree into a FlatClassifier. It fails on malformed trees
// (nil root, a node with exactly one child, split fields outside the int32
// range or the attribute count) rather than building a classifier that
// would walk out of bounds.
func (t *Tree) Flatten() (*FlatClassifier, error) {
	if t == nil || t.Root == nil {
		return nil, errors.New("tree: cannot flatten a tree with no root")
	}
	nodes, err := appendFlat(make([]flatNode, 0, t.NodeCount()), t.Root, t.NumAttrs)
	if err != nil {
		return nil, err
	}
	return &FlatClassifier{nodes: nodes, numAttrs: t.NumAttrs}, nil
}

// appendFlat appends n's subtree in pre-order and returns the grown array.
func appendFlat(nodes []flatNode, n *Node, numAttrs int) ([]flatNode, error) {
	idx := len(nodes)
	if idx >= math.MaxInt32 {
		return nil, errors.New("tree: too many nodes to flatten")
	}
	if n.IsLeaf() {
		if n.Class < 0 || int64(n.Class) > math.MaxInt32 {
			return nil, fmt.Errorf("tree: leaf class %d outside the flattenable range", n.Class)
		}
		return append(nodes, flatNode{attr: flatLeaf, class: int32(n.Class)}), nil
	}
	if n.Left == nil || n.Right == nil {
		return nil, errors.New("tree: malformed node with exactly one child")
	}
	if n.Attr < 0 || n.Attr >= numAttrs {
		return nil, fmt.Errorf("tree: split attribute %d outside [0, %d)", n.Attr, numAttrs)
	}
	if n.Cut < math.MinInt32 || int64(n.Cut) > math.MaxInt32 {
		return nil, fmt.Errorf("tree: split cut %d outside the flattenable range", n.Cut)
	}
	if n.Class < 0 || int64(n.Class) > math.MaxInt32 {
		return nil, fmt.Errorf("tree: node class %d outside the flattenable range", n.Class)
	}
	nodes = append(nodes, flatNode{attr: int32(n.Attr), cut: int32(n.Cut), class: int32(n.Class)})
	nodes, err := appendFlat(nodes, n.Left, numAttrs)
	if err != nil {
		return nil, err
	}
	if len(nodes) >= math.MaxInt32 {
		return nil, errors.New("tree: too many nodes to flatten")
	}
	nodes[idx].right = int32(len(nodes))
	return appendFlat(nodes, n.Right, numAttrs)
}

// NumAttrs returns the attribute count records must be discretized to.
func (f *FlatClassifier) NumAttrs() int { return f.numAttrs }

// Len returns the number of nodes in the flattened tree.
func (f *FlatClassifier) Len() int { return len(f.nodes) }

// Classify returns the class of a record given its interval indices. bins
// must hold at least NumAttrs entries; Classify performs no validation —
// hot-path callers have already discretized the record against the schema.
// It allocates nothing.
func (f *FlatClassifier) Classify(bins []int) int {
	nodes := f.nodes
	i := 0
	for {
		n := nodes[i]
		if n.attr < 0 {
			return int(n.class)
		}
		if bins[n.attr] <= int(n.cut) {
			i++
		} else {
			i = int(n.right)
		}
	}
}

// ClassifyBatch classifies every record (interval indices, NumAttrs per
// record) and returns their classes. It allocates only the result slice.
func (f *FlatClassifier) ClassifyBatch(records [][]int) []int {
	out := make([]int, len(records))
	f.ClassifyBatchInto(records, out)
	return out
}

// ClassifyBatchInto classifies every record into out, which must hold
// len(records) entries. It allocates nothing: the node array stays resident
// in cache across records, which is what makes batch classification on the
// flat layout profitable.
func (f *FlatClassifier) ClassifyBatchInto(records [][]int, out []int) {
	out = out[:len(records)]
	for i, rec := range records {
		out[i] = f.Classify(rec)
	}
}
