package tree

import "testing"

func TestValidateTrainedTree(t *testing.T) {
	var col, labels []int
	for i := 0; i < 200; i++ {
		col = append(col, i%8)
		l := 0
		if i%8 >= 4 {
			l = 1
		}
		labels = append(labels, l)
	}
	src := makeSource(t, [][]int{col}, 8, labels, 2)
	tr, err := Grow(src, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("trained tree invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	leaf := func(class int) *Node { return &Node{Class: class, Counts: []int{1, 1}} }
	cases := []struct {
		name string
		tr   *Tree
	}{
		{"nil tree", nil},
		{"nil root", &Tree{NumAttrs: 1, NumClasses: 2}},
		{"bad attrs", &Tree{Root: leaf(0), NumAttrs: 0, NumClasses: 2}},
		{"bad classes", &Tree{Root: leaf(0), NumAttrs: 1, NumClasses: 1}},
		{"bad importance", &Tree{Root: leaf(0), NumAttrs: 2, NumClasses: 2, Importance: []float64{1}}},
		{"class out of range", &Tree{Root: leaf(5), NumAttrs: 1, NumClasses: 2}},
		{"counts mismatch", &Tree{Root: &Node{Class: 0, Counts: []int{1}}, NumAttrs: 1, NumClasses: 2}},
		{"one child", &Tree{Root: &Node{Class: 0, Counts: []int{1, 1}, Left: leaf(0)}, NumAttrs: 1, NumClasses: 2}},
		{"split attr out of range", &Tree{
			Root:     &Node{Class: 0, Counts: []int{1, 1}, Attr: 3, Left: leaf(0), Right: leaf(1)},
			NumAttrs: 1, NumClasses: 2,
		}},
		{"negative cut", &Tree{
			Root:     &Node{Class: 0, Counts: []int{1, 1}, Attr: 0, Cut: -1, Left: leaf(0), Right: leaf(1)},
			NumAttrs: 1, NumClasses: 2,
		}},
		{"bad grandchild", &Tree{
			Root: &Node{Class: 0, Counts: []int{1, 1}, Attr: 0, Cut: 1,
				Left: leaf(0), Right: &Node{Class: 9, Counts: []int{1, 1}}},
			NumAttrs: 1, NumClasses: 2,
		}},
	}
	for _, c := range cases {
		if err := c.tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", c.name)
		}
	}
}
