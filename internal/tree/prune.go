package tree

import "math"

// pruneZ is the standard normal quantile for C4.5's default confidence
// factor CF = 25%: pessimistic error rates are the 75%-upper-confidence
// bound of the observed training error rate.
const pruneZ = 0.6744897501960817

// prune applies bottom-up error-based pruning in the style of C4.5: a
// subtree is collapsed into a leaf when the node-as-leaf pessimistic error
// estimate does not exceed the sum of its leaves' estimates. This
// substitutes for the MDL pruning of the paper's SPRINT-lineage learner;
// both exist to stop noise in reconstructed data from growing spurious
// branches.
func prune(n *Node) float64 {
	if n == nil {
		return 0
	}
	asLeaf := pessimisticErrors(n)
	if n.IsLeaf() {
		return asLeaf
	}
	subtree := prune(n.Left) + prune(n.Right)
	if asLeaf <= subtree {
		n.Left, n.Right = nil, nil
		return asLeaf
	}
	return subtree
}

// pessimisticErrors estimates the true number of errors the node would make
// as a leaf: n times the upper confidence bound of the observed error rate
// (normal approximation with continuity correction).
func pessimisticErrors(n *Node) float64 {
	total := 0
	for _, c := range n.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	e := total - n.Counts[n.Class]
	nf := float64(total)
	p := (float64(e) + 0.5) / nf
	if p > 1 {
		p = 1
	}
	u := p + pruneZ*math.Sqrt(p*(1-p)/nf)
	if u > 1 {
		u = 1
	}
	return nf * u
}
