package tree

import (
	"testing"
	"testing/quick"

	"ppdm/internal/prng"
)

// growRandomTree trains a tree on random discretized data; pruning and
// depth limits vary with the seed so the fuzz covers deep trees, stubby
// pruned trees, and pure-data single leaves.
func growRandomTree(seed uint64) (*Tree, [][]int, int, error) {
	r := prng.New(seed)
	n := 20 + r.Intn(400)
	bins := 2 + r.Intn(10)
	attrs := 1 + r.Intn(5)
	classes := 2 + r.Intn(3)
	pure := r.Intn(8) == 0 // occasionally: one class only → leaf-only tree
	cols := make([][]int, attrs)
	for a := range cols {
		col := make([]int, n)
		for i := range col {
			col[i] = r.Intn(bins)
		}
		cols[a] = col
	}
	labels := make([]int, n)
	for i := range labels {
		if !pure {
			labels[i] = r.Intn(classes)
		}
	}
	binsV := make([]int, attrs)
	for i := range binsV {
		binsV[i] = bins
	}
	src, err := NewStaticSource(cols, binsV, labels, classes)
	if err != nil {
		return nil, nil, 0, err
	}
	cfg := Config{MinLeaf: 1 + r.Intn(3), DisablePruning: r.Intn(2) == 0, MaxDepth: 1 + r.Intn(12)}
	tr, err := Grow(src, cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	records := make([][]int, n)
	for i := range records {
		rec := make([]int, attrs)
		for a := range rec {
			rec[a] = cols[a][i]
		}
		records[i] = rec
	}
	return tr, records, bins, err
}

// TestFlattenRoundTripProperty is the flat layout's contract: across fuzzed
// grown trees — pruned and unpruned, deep and leaf-only — the flattened
// classifier must agree with the pointer walk on every training record and
// on adversarial random records (including bin indices outside the trained
// range, which the walk compares like any other value).
func TestFlattenRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tr, records, bins, err := growRandomTree(seed)
		if err != nil {
			t.Log(err)
			return false
		}
		flat, err := tr.Flatten()
		if err != nil {
			t.Log(err)
			return false
		}
		if flat.NumAttrs() != tr.NumAttrs || flat.Len() != tr.NodeCount() {
			t.Logf("seed %d: flat shape %d attrs / %d nodes, tree %d / %d", seed, flat.NumAttrs(), flat.Len(), tr.NumAttrs, tr.NodeCount())
			return false
		}
		check := func(rec []int) bool {
			want, err := tr.Predict(rec)
			if err != nil {
				t.Log(err)
				return false
			}
			if got := flat.Classify(rec); got != want {
				t.Logf("seed %d: flat classifies %v as %d, pointer tree as %d", seed, rec, got, want)
				return false
			}
			return true
		}
		for _, rec := range records {
			if !check(rec) {
				return false
			}
		}
		r := prng.New(seed ^ 0x9e3779b97f4a7c15)
		adv := make([]int, tr.NumAttrs)
		for trial := 0; trial < 50; trial++ {
			for a := range adv {
				adv[a] = r.Intn(3*bins) - bins // below, inside, and above the trained range
			}
			if !check(adv) {
				return false
			}
		}
		// Batch path agrees with the single-record path.
		got := flat.ClassifyBatch(records)
		for i, rec := range records {
			if want := flat.Classify(rec); got[i] != want {
				t.Logf("seed %d: batch class %d differs from single %d at record %d", seed, got[i], want, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestFlattenLeafOnly pins the smallest tree: a single leaf flattens to a
// one-node array that answers the majority class for any record.
func TestFlattenLeafOnly(t *testing.T) {
	tr := &Tree{Root: &Node{Class: 2}, NumAttrs: 3, NumClasses: 4}
	flat, err := tr.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if flat.Len() != 1 {
		t.Fatalf("leaf-only tree flattened to %d nodes", flat.Len())
	}
	if got := flat.Classify([]int{7, -1, 99}); got != 2 {
		t.Fatalf("leaf-only tree classified as %d, want 2", got)
	}
}

// TestFlattenRejectsMalformed checks that Flatten refuses trees it could
// not walk safely instead of packing an out-of-bounds classifier.
func TestFlattenRejectsMalformed(t *testing.T) {
	if _, err := (*Tree)(nil).Flatten(); err == nil {
		t.Error("nil tree flattened without error")
	}
	if _, err := (&Tree{}).Flatten(); err == nil {
		t.Error("rootless tree flattened without error")
	}
	oneChild := &Tree{NumAttrs: 1, Root: &Node{Attr: 0, Cut: 0, Left: &Node{Class: 1}}}
	if _, err := oneChild.Flatten(); err == nil {
		t.Error("one-child node flattened without error")
	}
	badAttr := &Tree{NumAttrs: 1, Root: &Node{Attr: 5, Left: &Node{}, Right: &Node{}}}
	if _, err := badAttr.Flatten(); err == nil {
		t.Error("out-of-range split attribute flattened without error")
	}
}

// TestFlatClassifyAllocs is the allocation contract of the satellite task:
// ClassifyBatch allocates only its output slice, and the Into/single-record
// variants allocate nothing at all.
func TestFlatClassifyAllocs(t *testing.T) {
	tr, records, _, err := growRandomTree(7)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := tr.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() { flat.ClassifyBatch(records) }); allocs != 1 {
		t.Errorf("ClassifyBatch: %v allocs per run, want exactly the output slice", allocs)
	}
	out := make([]int, len(records))
	if allocs := testing.AllocsPerRun(100, func() { flat.ClassifyBatchInto(records, out) }); allocs != 0 {
		t.Errorf("ClassifyBatchInto: %v allocs per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { flat.Classify(records[0]) }); allocs != 0 {
		t.Errorf("Classify: %v allocs per run, want 0", allocs)
	}
}
