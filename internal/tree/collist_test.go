package tree

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ppdm/internal/prng"
	"ppdm/internal/stream"
)

// valuesOnlySource hides a StaticSource's columnar interface, forcing the
// legacy row-pull (Values) engine — the reference the columnar engine must
// reproduce exactly.
type valuesOnlySource struct {
	s *StaticSource
}

func (v *valuesOnlySource) Len() int          { return v.s.Len() }
func (v *valuesOnlySource) NumAttrs() int     { return v.s.NumAttrs() }
func (v *valuesOnlySource) Bins(attr int) int { return v.s.Bins(attr) }
func (v *valuesOnlySource) NumClasses() int   { return v.s.NumClasses() }
func (v *valuesOnlySource) Label(row int) int { return v.s.Label(row) }
func (v *valuesOnlySource) Values(attr int, rows []int, span Span, dst []int) []int {
	return v.s.Values(attr, rows, span, dst)
}

// randomCols draws a noisy multi-attribute dataset big enough to split
// repeatedly and to cross several SegLen segments.
func randomCols(seed uint64, n, attrs, bins, classes int) (cols [][]int, labels []int) {
	r := prng.New(seed)
	cols = make([][]int, attrs)
	for a := range cols {
		col := make([]int, n)
		for i := range col {
			col[i] = r.Intn(bins)
		}
		cols[a] = col
	}
	labels = make([]int, n)
	for i := range labels {
		// correlate the label with attribute 0 plus noise so real splits
		// exist at many depths
		l := 0
		if cols[0][i] >= bins/2 {
			l = 1
		}
		if r.Bernoulli(0.25) {
			l = r.Intn(classes)
		}
		labels[i] = l
	}
	return cols, labels
}

func treesEqual(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.String() != b.String() {
		t.Fatal("tree structures differ")
	}
	if !reflect.DeepEqual(a.Importance, b.Importance) {
		t.Fatalf("Importance differs: %v vs %v", a.Importance, b.Importance)
	}
}

// TestColumnarMatchesValuesEngine grows the same data through the columnar
// engine (StaticSource) and the legacy row-pull path and demands identical
// trees — structure, counts, and bit-identical Importance.
func TestColumnarMatchesValuesEngine(t *testing.T) {
	const n, attrs, bins, classes = 30000, 4, 12, 3
	cols, labels := randomCols(11, n, attrs, bins, classes)
	binsV := []int{bins, bins, bins, bins}
	static, err := NewStaticSource(cols, binsV, labels, classes)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{},
		{MinLeaf: 1, DisablePruning: true},
		{MaxDepth: 4},
	} {
		colTree, err := Grow(static, cfg)
		if err != nil {
			t.Fatal(err)
		}
		valTree, err := Grow(&valuesOnlySource{s: static}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		treesEqual(t, colTree, valTree)
	}
}

// spillFromCols writes columns through the segment codec into temp files
// and wraps them in a SpillSource.
func spillFromCols(t *testing.T, cols [][]int, bins []int, labels []int, classes, cache int) *SpillSource {
	t.Helper()
	dir := t.TempDir()
	readers := make([]*stream.SegmentReader, len(cols))
	for a, col := range cols {
		f, err := os.Create(filepath.Join(dir, "col"+string(rune('a'+a))))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		w := stream.NewSegmentWriter(f)
		for lo := 0; lo < len(col); lo += SegLen {
			hi := lo + SegLen
			if hi > len(col) {
				hi = len(col)
			}
			if err := w.WriteInts(col[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		readers[a] = stream.NewSegmentReader(f, w.Index())
	}
	src, err := NewSpillSource(readers, bins, labels, classes, cache)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestSpillSourceMatchesStatic grows from disk-spilled segments (including
// with a pathologically small cache) and compares against the in-memory
// columnar tree.
func TestSpillSourceMatchesStatic(t *testing.T) {
	const n, attrs, bins, classes = 25000, 3, 10, 2
	cols, labels := randomCols(5, n, attrs, bins, classes)
	binsV := []int{bins, bins, bins}
	static, err := NewStaticSource(cols, binsV, labels, classes)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MinLeaf: 20}
	want, err := Grow(static, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cache := range []int{0, 1, 2} {
		spill := spillFromCols(t, cols, binsV, labels, classes, cache)
		got, err := Grow(spill, cfg)
		if err != nil {
			t.Fatalf("cache %d: %v", cache, err)
		}
		treesEqual(t, want, got)
	}
}

// TestSubtreeParallelDeterminism forces deep forking (tiny cutoff) at
// several worker counts; every tree must be identical to the serial one.
func TestSubtreeParallelDeterminism(t *testing.T) {
	const n, attrs, bins, classes = 40000, 5, 16, 3
	cols, labels := randomCols(23, n, attrs, bins, classes)
	binsV := []int{bins, bins, bins, bins, bins}
	static, err := NewStaticSource(cols, binsV, labels, classes)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{MinLeaf: 5, DisablePruning: true, SubtreeMinRows: 32}
	serialCfg := base
	serialCfg.Workers = 1
	want, err := Grow(static, serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		cfg := base
		cfg.Workers = workers
		for rep := 0; rep < 3; rep++ {
			got, err := Grow(static, cfg)
			if err != nil {
				t.Fatal(err)
			}
			treesEqual(t, want, got)
		}
	}
	// Subtree parallelism disabled must also agree.
	off := base
	off.SubtreeMinRows = -1
	off.Workers = 8
	got, err := Grow(static, off)
	if err != nil {
		t.Fatal(err)
	}
	treesEqual(t, want, got)
}

// TestMemAttrListValidation covers the columnar constructors' edges.
func TestMemAttrListValidation(t *testing.T) {
	if _, err := NewMemAttrList([]int{0, 3}, 3); err == nil {
		t.Error("out-of-range value accepted")
	}
	if _, err := NewMemAttrList([]int{0}, 0); err == nil {
		t.Error("zero bins accepted")
	}
	l, err := NewMemAttrList([]int{1, 0, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
	seg, err := l.Segment(0)
	if err != nil || len(seg) != 3 || seg[0] != 1 {
		t.Errorf("Segment(0) = %v, %v", seg, err)
	}
	if _, err := l.Segment(1); err == nil {
		t.Error("out-of-range segment accepted")
	}
}

// TestSpillSourceValidation covers grid and consistency checks.
func TestSpillSourceValidation(t *testing.T) {
	labels := []int{0, 1, 0, 1}
	// Mismatched column length, bad labels, empty reader set: construct
	// readers manually.
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "short"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := stream.NewSegmentWriter(f)
	if err := w.WriteInts([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	r := stream.NewSegmentReader(f, w.Index())
	if _, err := NewSpillSource([]*stream.SegmentReader{r}, []int{3}, labels, 2, 0); err == nil {
		t.Error("column shorter than labels accepted")
	}
	if _, err := NewSpillSource([]*stream.SegmentReader{r}, []int{3}, []int{0, 5}, 2, 0); err == nil {
		t.Error("out-of-range label accepted")
	}
	if _, err := NewSpillSource(nil, nil, labels, 2, 0); err == nil {
		t.Error("empty reader set accepted")
	}
}

// TestSpillValueOutOfRange ensures a corrupt spilled value surfaces as an
// error from Grow rather than corrupting the histogram.
func TestSpillValueOutOfRange(t *testing.T) {
	n := 100
	col := make([]int, n)
	labels := make([]int, n)
	for i := range col {
		col[i] = i % 4
		labels[i] = i % 2
	}
	// Declare fewer bins than the data uses: values 2..3 become invalid on
	// read.
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "bad"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := stream.NewSegmentWriter(f)
	if err := w.WriteInts(col); err != nil {
		t.Fatal(err)
	}
	r := stream.NewSegmentReader(f, w.Index())
	src, err := NewSpillSource([]*stream.SegmentReader{r}, []int{2}, labels, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Grow(src, Config{MinLeaf: 1}); err == nil {
		t.Fatal("out-of-range spilled value did not error")
	}
}
