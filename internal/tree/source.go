package tree

import (
	"fmt"
)

// Span is an inclusive range of interval indices. During growth the tree
// tracks, for every attribute, the span of intervals still feasible on the
// current path (ancestor splits shrink it); sources that recompute
// assignments per node must honour it, otherwise a node's fresh assignment
// can contradict the very split that created the node.
type Span struct{ Lo, Hi int }

// Contains reports whether bin b lies in the span.
func (s Span) Contains(b int) bool { return b >= s.Lo && b <= s.Hi }

// Count returns the number of intervals in the span.
func (s Span) Count() int { return s.Hi - s.Lo + 1 }

// Source supplies training data to Grow. Attribute values are interval
// indices in [0, Bins(attr)).
//
// The parallel split search calls Values (and NodeDistributions) for
// different attributes concurrently, so implementations must be safe for
// concurrent calls with distinct attr arguments — in practice: no shared
// scratch buffers. Sources whose assignments are static should additionally
// implement ColumnSource, which routes them through the columnar engine and
// retires Values from the hot path entirely.
type Source interface {
	// Len returns the number of records.
	Len() int
	// NumAttrs returns the number of attributes.
	NumAttrs() int
	// Bins returns the number of intervals of the given attribute.
	Bins(attr int) int
	// NumClasses returns the number of class labels.
	NumClasses() int
	// Label returns the class of record row.
	Label(row int) int
	// Values returns the interval index of attribute attr for each listed
	// record, in order; every index must lie within span. Implementations
	// may recompute assignments per call (the paper's Local mode does).
	// dst, when its capacity suffices, is used as the result's backing
	// storage so hot callers can amortize allocation; pass nil to let the
	// implementation allocate. Callers must not retain the returned slice
	// across calls with the same dst.
	Values(attr int, rows []int, span Span, dst []int) []int
}

// DistribSource is an optional refinement of Source. When implemented, the
// split search asks it for per-class interval distributions of the node's
// records, replacing the histogram of stored values in the gini evaluation.
// This is how the paper's Local mode plugs in: the distribution at each node
// is freshly reconstructed from the node's perturbed values, while record
// routing still uses the stable Values assignment.
type DistribSource interface {
	Source
	// NodeDistributions returns expected per-class counts over the
	// intervals of attr for the given rows: dist[class][bin]. Bins outside
	// span must carry zero mass. ok = false falls back to counting stored
	// values. Callers must not retain the returned slices across calls.
	NodeDistributions(attr int, rows []int, span Span) (dist [][]float64, ok bool)
}

// StaticSource is a ColumnSource backed by precomputed interval assignments
// held in memory-resident attribute lists (one packed column per attribute).
type StaticSource struct {
	lists  []*MemAttrList
	bins   []int
	labels []int
	k      int // number of classes
}

// NewStaticSource validates and wraps precomputed interval assignments.
// cols[attr][row] must be in [0, bins[attr]); labels[row] in [0, numClasses).
func NewStaticSource(cols [][]int, bins []int, labels []int, numClasses int) (*StaticSource, error) {
	if len(cols) == 0 {
		return nil, errNoColumns
	}
	if len(cols) != len(bins) {
		return nil, fmt.Errorf("tree: %d columns but %d bin counts", len(cols), len(bins))
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("tree: need >= 2 classes, got %d", numClasses)
	}
	n := len(labels)
	lists := make([]*MemAttrList, len(cols))
	for a, col := range cols {
		if len(col) != n {
			return nil, fmt.Errorf("tree: column %d has %d rows, labels have %d", a, len(col), n)
		}
		list, err := NewMemAttrList(col, bins[a])
		if err != nil {
			return nil, fmt.Errorf("tree: attribute %d: %w", a, err)
		}
		lists[a] = list
	}
	for i, l := range labels {
		if l < 0 || l >= numClasses {
			return nil, fmt.Errorf("tree: label %d of row %d outside [0,%d)", l, i, numClasses)
		}
	}
	return &StaticSource{lists: lists, bins: bins, labels: labels, k: numClasses}, nil
}

// Len implements Source.
func (s *StaticSource) Len() int { return len(s.labels) }

// NumAttrs implements Source.
func (s *StaticSource) NumAttrs() int { return len(s.lists) }

// Bins implements Source.
func (s *StaticSource) Bins(attr int) int { return s.bins[attr] }

// NumClasses implements Source.
func (s *StaticSource) NumClasses() int { return s.k }

// Label implements Source.
func (s *StaticSource) Label(row int) int { return s.labels[row] }

// AttrList implements ColumnSource.
func (s *StaticSource) AttrList(attr int) AttrList { return s.lists[attr] }

// Labels implements ColumnSource.
func (s *StaticSource) Labels() []int { return s.labels }

// Values implements Source for callers outside the columnar engine (the
// engine itself reads the attribute lists directly). Static assignments
// already satisfy every span a correct grower can pass (rows were routed by
// these very values), so the span is only used to clamp defensively. The
// source holds no scratch state of its own, reusing dst when it is big
// enough.
func (s *StaticSource) Values(attr int, rows []int, span Span, dst []int) []int {
	if cap(dst) < len(rows) {
		dst = make([]int, len(rows))
	}
	out := dst[:len(rows)]
	col := s.lists[attr].vals
	for i, r := range rows {
		v := int(col[r])
		if v < span.Lo {
			v = span.Lo
		}
		if v > span.Hi {
			v = span.Hi
		}
		out[i] = v
	}
	return out
}
