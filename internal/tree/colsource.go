package tree

import (
	"container/list"
	"fmt"
	"sync"

	"ppdm/internal/stream"
)

// DefaultCacheSegments is the segment-cache budget of a SpillSource when the
// caller passes 0: at SegLen values of 4 bytes each, 256 segments keep at
// most ~8 MiB of decompressed column data resident however large the
// training set is.
const DefaultCacheSegments = 256

// SpillSource is a ColumnSource whose attribute lists reside in gzipped
// on-disk segment files (written by stream.SegmentWriter on the SegLen
// grid). Segments decompress on demand into a bounded, shared LRU cache, so
// tree growth over an arbitrarily large training set holds only the class
// list, the live rowID lists, and the cache budget in memory — the
// out-of-core half of the SPRINT design.
//
// The parallel split search reads different attributes concurrently;
// SpillSource synchronizes the cache internally and performs stateless
// reads through stream.SegmentReader, so no external locking is needed.
type SpillSource struct {
	lists  []*spillList
	bins   []int
	labels []int
	k      int
}

// NewSpillSource wraps one segment reader per attribute. Every reader must
// hold exactly len(labels) values in SegLen-sized segments (the last may be
// shorter); bin counts and labels are validated as in NewStaticSource.
// cacheSegments bounds the decompressed segments held across all attributes
// (0 = DefaultCacheSegments).
func NewSpillSource(readers []*stream.SegmentReader, bins []int, labels []int, numClasses, cacheSegments int) (*SpillSource, error) {
	if len(readers) == 0 {
		return nil, errNoColumns
	}
	if len(readers) != len(bins) {
		return nil, fmt.Errorf("tree: %d columns but %d bin counts", len(readers), len(bins))
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("tree: need >= 2 classes, got %d", numClasses)
	}
	n := len(labels)
	for i, l := range labels {
		if l < 0 || l >= numClasses {
			return nil, fmt.Errorf("tree: label %d of row %d outside [0,%d)", l, i, numClasses)
		}
	}
	if cacheSegments <= 0 {
		cacheSegments = DefaultCacheSegments
	}
	cache := &segCache{capacity: cacheSegments, entries: make(map[segKey]*list.Element)}
	s := &SpillSource{bins: bins, labels: labels, k: numClasses}
	wantSegs := (n + SegLen - 1) / SegLen
	for a, r := range readers {
		if bins[a] < 1 {
			return nil, fmt.Errorf("tree: attribute %d has %d bins", a, bins[a])
		}
		if r.N() != n {
			return nil, fmt.Errorf("tree: column %d holds %d values, labels have %d", a, r.N(), n)
		}
		if r.Segments() != wantSegs {
			return nil, fmt.Errorf("tree: column %d has %d segments, the SegLen grid needs %d", a, r.Segments(), wantSegs)
		}
		for seg := 0; seg < r.Segments(); seg++ {
			want := SegLen
			if seg == wantSegs-1 {
				want = n - seg*SegLen
			}
			if r.Count(seg) != want {
				return nil, fmt.Errorf("tree: column %d segment %d holds %d values, grid needs %d", a, seg, r.Count(seg), want)
			}
		}
		s.lists = append(s.lists, &spillList{r: r, attr: a, bins: bins[a], n: n, cache: cache})
	}
	return s, nil
}

// Len implements Source.
func (s *SpillSource) Len() int { return len(s.labels) }

// NumAttrs implements Source.
func (s *SpillSource) NumAttrs() int { return len(s.lists) }

// Bins implements Source.
func (s *SpillSource) Bins(attr int) int { return s.bins[attr] }

// NumClasses implements Source.
func (s *SpillSource) NumClasses() int { return s.k }

// Label implements Source.
func (s *SpillSource) Label(row int) int { return s.labels[row] }

// AttrList implements ColumnSource.
func (s *SpillSource) AttrList(attr int) AttrList { return s.lists[attr] }

// Labels implements ColumnSource.
func (s *SpillSource) Labels() []int { return s.labels }

// Values implements Source for interface completeness only: the columnar
// engine never routes a ColumnSource through the row-pull path. It reads
// through the same segment cache and panics on storage failure, since the
// signature has no error channel; any caller hitting this path with a
// failing disk has already lost the training run.
func (s *SpillSource) Values(attr int, rows []int, span Span, dst []int) []int {
	if cap(dst) < len(rows) {
		dst = make([]int, len(rows))
	}
	out := dst[:len(rows)]
	list := s.lists[attr]
	for i, r := range rows {
		seg, err := list.Segment(r / SegLen)
		if err != nil {
			panic(fmt.Sprintf("tree: reading spilled column %d: %v", attr, err))
		}
		v := int(seg[r%SegLen])
		if v < span.Lo {
			v = span.Lo
		}
		if v > span.Hi {
			v = span.Hi
		}
		out[i] = v
	}
	return out
}

// spillList is the AttrList view of one spilled column.
type spillList struct {
	r     *stream.SegmentReader
	attr  int
	bins  int
	n     int
	cache *segCache
}

// Len implements AttrList.
func (l *spillList) Len() int { return l.n }

// Segment implements AttrList: cache hit or decompress-and-insert. A slice
// handed out stays valid even if evicted (eviction only drops the cache's
// reference; the garbage collector reclaims it once the caller moves on),
// so the budget bounds resident segments up to the readers in flight.
func (l *spillList) Segment(seg int) ([]uint32, error) {
	return l.cache.get(segKey{attr: l.attr, seg: seg}, func() ([]uint32, error) {
		raw, err := l.r.ReadInts(seg)
		if err != nil {
			return nil, err
		}
		vals := make([]uint32, len(raw))
		for i, v := range raw {
			if v < 0 || v >= l.bins {
				return nil, fmt.Errorf("tree: spilled value %d of attribute %d row %d outside [0,%d)",
					v, l.attr, seg*SegLen+i, l.bins)
			}
			vals[i] = uint32(v)
		}
		return vals, nil
	})
}

// segKey addresses one cached segment.
type segKey struct{ attr, seg int }

// segCache is a mutex-guarded LRU over decompressed segments, shared by all
// attributes of one SpillSource so hot columns can claim more of the budget
// than cold ones.
type segCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[segKey]*list.Element
	order    list.List // front = most recently used; values are *segEntry
}

type segEntry struct {
	key  segKey
	vals []uint32
}

// get returns the cached segment or loads it with load. Concurrent misses
// on the same key may both load; the duplicate work is harmless (identical
// data) and cheaper than holding the lock across a gunzip.
func (c *segCache) get(key segKey, load func() ([]uint32, error)) ([]uint32, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		vals := el.Value.(*segEntry).vals
		c.mu.Unlock()
		return vals, nil
	}
	c.mu.Unlock()

	vals, err := load()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// Another goroutine raced the load; keep its copy.
		c.order.MoveToFront(el)
		vals = el.Value.(*segEntry).vals
	} else {
		c.entries[key] = c.order.PushFront(&segEntry{key: key, vals: vals})
		for len(c.entries) > c.capacity {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*segEntry).key)
		}
	}
	c.mu.Unlock()
	return vals, nil
}
