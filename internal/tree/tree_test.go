package tree

import (
	"strings"
	"testing"
	"testing/quick"

	"ppdm/internal/prng"
)

// makeSource builds a StaticSource with the given columns; all attributes
// share the same bin count.
func makeSource(t *testing.T, cols [][]int, bins int, labels []int, classes int) *StaticSource {
	t.Helper()
	b := make([]int, len(cols))
	for i := range b {
		b[i] = bins
	}
	src, err := NewStaticSource(cols, b, labels, classes)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestNewStaticSourceValidation(t *testing.T) {
	good := [][]int{{0, 1, 2}}
	labels := []int{0, 1, 0}
	cases := []struct {
		name    string
		cols    [][]int
		bins    []int
		labels  []int
		classes int
	}{
		{"no cols", nil, nil, labels, 2},
		{"bins mismatch", good, []int{3, 3}, labels, 2},
		{"one class", good, []int{3}, labels, 1},
		{"row mismatch", [][]int{{0, 1}}, []int{3}, labels, 2},
		{"zero bins", good, []int{0}, labels, 2},
		{"value out of range", [][]int{{0, 5, 1}}, []int{3}, labels, 2},
		{"negative value", [][]int{{0, -1, 1}}, []int{3}, labels, 2},
		{"bad label", good, []int{3}, []int{0, 2, 0}, 2},
	}
	for _, c := range cases {
		if _, err := NewStaticSource(c.cols, c.bins, c.labels, c.classes); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := NewStaticSource(good, []int{3}, labels, 2); err != nil {
		t.Errorf("valid source rejected: %v", err)
	}
}

func TestGrowValidation(t *testing.T) {
	if _, err := Grow(nil, Config{}); err == nil {
		t.Error("nil source accepted")
	}
	src := makeSource(t, [][]int{{0, 1}}, 2, []int{0, 1}, 2)
	if _, err := Grow(src, Config{MaxDepth: -1}); err == nil {
		t.Error("negative MaxDepth accepted")
	}
	if _, err := Grow(src, Config{MinLeaf: -1}); err == nil {
		t.Error("negative MinLeaf accepted")
	}
	if _, err := Grow(src, Config{MinGain: -1}); err == nil {
		t.Error("negative MinGain accepted")
	}
	empty := makeSource(t, [][]int{{}}, 2, []int{}, 2)
	if _, err := Grow(empty, Config{}); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestPureDataYieldsLeaf(t *testing.T) {
	src := makeSource(t, [][]int{{0, 1, 2, 3}}, 4, []int{1, 1, 1, 1}, 2)
	tr, err := Grow(src, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.IsLeaf() || tr.Root.Class != 1 {
		t.Fatalf("pure data should give a single leaf of class 1, got %+v", tr.Root)
	}
}

func TestPerfectlySeparableSplit(t *testing.T) {
	// class = bin <= 4 ? 0 : 1 on attribute 0; attribute 1 is constant.
	var col0, col1, labels []int
	for i := 0; i < 200; i++ {
		b := i % 10
		col0 = append(col0, b)
		col1 = append(col1, 0)
		if b <= 4 {
			labels = append(labels, 0)
		} else {
			labels = append(labels, 1)
		}
	}
	src := makeSource(t, [][]int{col0, col1}, 10, labels, 2)
	tr, err := Grow(src, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.IsLeaf() {
		t.Fatal("separable data yielded a leaf")
	}
	if tr.Root.Attr != 0 || tr.Root.Cut != 4 {
		t.Fatalf("root split = attr%d cut %d, want attr0 cut 4", tr.Root.Attr, tr.Root.Cut)
	}
	for b := 0; b < 10; b++ {
		want := 0
		if b > 4 {
			want = 1
		}
		got, err := tr.Predict([]int{b, 0})
		if err != nil || got != want {
			t.Fatalf("Predict(bin %d) = %d, %v; want %d", b, got, err, want)
		}
	}
	// importance concentrated on attribute 0
	if tr.Importance[0] <= 0 || tr.Importance[1] != 0 {
		t.Errorf("importance = %v", tr.Importance)
	}
}

func TestNestedConditionNeedsDepthTwo(t *testing.T) {
	// class = (a0 >= 1) AND (a1 >= 1) over bins {0,1}: the root split has
	// positive gain and the second level finishes the job.
	var col0, col1, labels []int
	for i := 0; i < 400; i++ {
		a, b := (i/2)%2, i%2
		col0 = append(col0, a)
		col1 = append(col1, b)
		labels = append(labels, a&b)
	}
	src := makeSource(t, [][]int{col0, col1}, 2, labels, 2)
	tr, err := Grow(src, Config{MinLeaf: 1, MinGain: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			got, _ := tr.Predict([]int{a, b})
			if got != a&b {
				t.Fatalf("Predict(%d,%d) = %d, want %d\n%s", a, b, got, a&b, tr)
			}
		}
	}
	if tr.Depth() < 2 {
		t.Errorf("AND tree depth = %d, want >= 2", tr.Depth())
	}
}

func TestMaxDepthRespected(t *testing.T) {
	r := prng.New(1)
	var col, labels []int
	for i := 0; i < 1000; i++ {
		col = append(col, r.Intn(32))
		labels = append(labels, r.Intn(2))
	}
	src := makeSource(t, [][]int{col}, 32, labels, 2)
	tr, err := Grow(src, Config{MaxDepth: 3, MinLeaf: 1, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 3 {
		t.Errorf("depth %d exceeds MaxDepth 3", tr.Depth())
	}
}

func TestMinLeafRespected(t *testing.T) {
	r := prng.New(2)
	var col, labels []int
	for i := 0; i < 500; i++ {
		b := r.Intn(16)
		col = append(col, b)
		l := 0
		if b >= 8 {
			l = 1
		}
		if r.Bernoulli(0.2) {
			l = 1 - l
		}
		labels = append(labels, l)
	}
	src := makeSource(t, [][]int{col}, 16, labels, 2)
	const minLeaf = 40
	tr, err := Grow(src, Config{MinLeaf: minLeaf, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	var check func(n *Node)
	check = func(n *Node) {
		total := 0
		for _, c := range n.Counts {
			total += c
		}
		if n.IsLeaf() {
			if total < minLeaf {
				t.Fatalf("leaf with %d records < MinLeaf %d", total, minLeaf)
			}
			return
		}
		check(n.Left)
		check(n.Right)
	}
	check(tr.Root)
}

func TestPruningCollapsesNoise(t *testing.T) {
	// Labels are pure coin flips; an unpruned tree overfits, the pruned
	// tree should be (nearly) a single leaf.
	r := prng.New(3)
	var col, labels []int
	for i := 0; i < 2000; i++ {
		col = append(col, r.Intn(20))
		labels = append(labels, r.Intn(2))
	}
	src := makeSource(t, [][]int{col}, 20, labels, 2)
	unpruned, err := Grow(src, Config{MinLeaf: 1, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Grow(src, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NodeCount() >= unpruned.NodeCount() {
		t.Errorf("pruning did not shrink the tree: %d vs %d nodes", pruned.NodeCount(), unpruned.NodeCount())
	}
	if pruned.NodeCount() > 5 {
		t.Errorf("noise tree still has %d nodes after pruning", pruned.NodeCount())
	}
}

func TestPredictValidation(t *testing.T) {
	src := makeSource(t, [][]int{{0, 1}}, 2, []int{0, 1}, 2)
	tr, err := Grow(src, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Predict([]int{0, 1}); err == nil {
		t.Error("wrong-length record accepted")
	}
}

func TestDeterminism(t *testing.T) {
	r := prng.New(4)
	var col0, col1, labels []int
	for i := 0; i < 500; i++ {
		col0 = append(col0, r.Intn(8))
		col1 = append(col1, r.Intn(8))
		labels = append(labels, r.Intn(2))
	}
	src := makeSource(t, [][]int{col0, col1}, 8, labels, 2)
	a, _ := Grow(src, Config{})
	b, _ := Grow(src, Config{})
	if a.String() != b.String() {
		t.Fatal("identical input produced different trees")
	}
}

func TestCountsAndRender(t *testing.T) {
	var col, labels []int
	for i := 0; i < 100; i++ {
		col = append(col, i%4)
		labels = append(labels, map[bool]int{true: 0, false: 1}[i%4 <= 1])
	}
	src := makeSource(t, [][]int{col}, 4, labels, 2)
	tr, err := Grow(src, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount() != tr.LeafCount()*2-1 {
		t.Errorf("binary tree invariant violated: %d nodes, %d leaves", tr.NodeCount(), tr.LeafCount())
	}
	out := tr.Render([]string{"age"}, []string{"B", "A"})
	if !strings.Contains(out, "age <= bin") || !strings.Contains(out, "leaf ->") {
		t.Errorf("Render output unexpected:\n%s", out)
	}
	// mismatched names fall back to generic rendering
	fallback := tr.Render([]string{"x", "y"}, []string{"B", "A"})
	if !strings.Contains(fallback, "attr0") {
		t.Errorf("fallback render unexpected:\n%s", fallback)
	}
}

// Property: on arbitrary data the tree trains and predicts a valid class for
// every record, and training accuracy of an unpruned deep tree is >= the
// majority-class rate.
func TestGrowPredictProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, binsRaw, attrsRaw uint8) bool {
		r := prng.New(seed)
		n := int(nRaw%300) + 20
		bins := int(binsRaw%10) + 2
		attrs := int(attrsRaw%4) + 1
		cols := make([][]int, attrs)
		for a := range cols {
			col := make([]int, n)
			for i := range col {
				col[i] = r.Intn(bins)
			}
			cols[a] = col
		}
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.Intn(3)
		}
		binsV := make([]int, attrs)
		for i := range binsV {
			binsV[i] = bins
		}
		src, err := NewStaticSource(cols, binsV, labels, 3)
		if err != nil {
			return false
		}
		tr, err := Grow(src, Config{MinLeaf: 1, DisablePruning: true})
		if err != nil {
			return false
		}
		correct := 0
		rec := make([]int, attrs)
		for i := 0; i < n; i++ {
			for a := range rec {
				rec[a] = cols[a][i]
			}
			got, err := tr.Predict(rec)
			if err != nil || got < 0 || got >= 3 {
				return false
			}
			if got == labels[i] {
				correct++
			}
		}
		maj := 0
		counts := make([]int, 3)
		for _, l := range labels {
			counts[l]++
		}
		for _, c := range counts {
			if c > maj {
				maj = c
			}
		}
		return correct >= maj
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
