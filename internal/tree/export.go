package tree

import (
	"fmt"
	"strings"
)

// String renders the tree as indented ASCII with generic attribute names.
func (t *Tree) String() string {
	names := make([]string, t.NumAttrs)
	for i := range names {
		names[i] = fmt.Sprintf("attr%d", i)
	}
	classes := make([]string, t.NumClasses)
	for i := range classes {
		classes[i] = fmt.Sprintf("class%d", i)
	}
	return t.Render(names, classes)
}

// Render renders the tree as indented ASCII using the given attribute and
// class names. Mismatched name counts fall back to generic names.
func (t *Tree) Render(attrNames, classNames []string) string {
	if len(attrNames) != t.NumAttrs || len(classNames) != t.NumClasses {
		return t.String()
	}
	var b strings.Builder
	renderNode(&b, t.Root, attrNames, classNames, 0)
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, attrs, classes []string, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.IsLeaf() {
		fmt.Fprintf(b, "%sleaf -> %s %v\n", indent, classes[n.Class], n.Counts)
		return
	}
	fmt.Fprintf(b, "%s%s <= bin %d?\n", indent, attrs[n.Attr], n.Cut)
	renderNode(b, n.Left, attrs, classes, depth+1)
	renderNode(b, n.Right, attrs, classes, depth+1)
}
