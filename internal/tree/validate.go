package tree

import (
	"errors"
	"fmt"
)

// Validate checks the structural invariants of a tree, returning the first
// violation found. It is used when deserializing models from untrusted
// input: every internal node must have two children, split on a valid
// attribute at a cut that leaves both sides non-empty, and every node's
// class must be a valid label.
func (t *Tree) Validate() error {
	if t == nil || t.Root == nil {
		return errors.New("tree: nil tree or root")
	}
	if t.NumAttrs < 1 {
		return fmt.Errorf("tree: invalid attribute count %d", t.NumAttrs)
	}
	if t.NumClasses < 2 {
		return fmt.Errorf("tree: invalid class count %d", t.NumClasses)
	}
	if t.Importance != nil && len(t.Importance) != t.NumAttrs {
		return fmt.Errorf("tree: importance has %d entries, want %d", len(t.Importance), t.NumAttrs)
	}
	return t.validateNode(t.Root)
}

func (t *Tree) validateNode(n *Node) error {
	if n == nil {
		return errors.New("tree: nil node")
	}
	if n.Class < 0 || n.Class >= t.NumClasses {
		return fmt.Errorf("tree: node class %d outside [0,%d)", n.Class, t.NumClasses)
	}
	if n.Counts != nil && len(n.Counts) != t.NumClasses {
		return fmt.Errorf("tree: node counts have %d entries, want %d", len(n.Counts), t.NumClasses)
	}
	if (n.Left == nil) != (n.Right == nil) {
		return errors.New("tree: node with exactly one child")
	}
	if n.IsLeaf() {
		return nil
	}
	if n.Attr < 0 || n.Attr >= t.NumAttrs {
		return fmt.Errorf("tree: split attribute %d outside [0,%d)", n.Attr, t.NumAttrs)
	}
	if n.Cut < 0 {
		return fmt.Errorf("tree: negative cut %d", n.Cut)
	}
	if err := t.validateNode(n.Left); err != nil {
		return err
	}
	return t.validateNode(n.Right)
}
