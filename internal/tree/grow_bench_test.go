package tree

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ppdm/internal/stream"
)

// Engine-level pairs for BENCH_tree.json: identical growth workload through
// the legacy row-pull (Values) engine, the columnar in-memory engine, and
// the disk-spilled columnar engine. Outputs are identical by
// TestColumnarMatchesValuesEngine / TestSpillSourceMatchesStatic, so the
// deltas measure pure data-access cost.

const benchGrowN = 100000

func benchGrowSource(b *testing.B) (*StaticSource, [][]int, []int) {
	b.Helper()
	cols, labels := randomCols(3, benchGrowN, 6, 20, 3)
	bins := []int{20, 20, 20, 20, 20, 20}
	src, err := NewStaticSource(cols, bins, labels, 3)
	if err != nil {
		b.Fatal(err)
	}
	return src, cols, labels
}

func benchGrowCfg() Config {
	// Serial, unpruned growth isolates the engine cost.
	return Config{MinLeaf: 50, DisablePruning: true, Workers: 1, SubtreeMinRows: -1}
}

func BenchmarkGrowValuesEngine(b *testing.B) {
	src, _, _ := benchGrowSource(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Grow(&valuesOnlySource{s: src}, benchGrowCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGrowColumnar(b *testing.B) {
	src, _, _ := benchGrowSource(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Grow(src, benchGrowCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGrowSpill(b *testing.B) {
	_, cols, labels := benchGrowSource(b)
	dir := b.TempDir()
	readers := make([]*stream.SegmentReader, len(cols))
	for a, col := range cols {
		f, err := os.Create(filepath.Join(dir, "col"+strconv.Itoa(a)))
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		w := stream.NewSegmentWriter(f)
		for lo := 0; lo < len(col); lo += SegLen {
			hi := lo + SegLen
			if hi > len(col) {
				hi = len(col)
			}
			if err := w.WriteInts(col[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
		readers[a] = stream.NewSegmentReader(f, w.Index())
	}
	src, err := NewSpillSource(readers, []int{20, 20, 20, 20, 20, 20}, labels, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Grow(src, benchGrowCfg()); err != nil {
			b.Fatal(err)
		}
	}
}
