package tree

import (
	"testing"
)

// fakeDistribSource wraps a StaticSource and serves per-node distributions
// that contradict the stored values, letting tests verify that the split
// search consumes DistribSource estimates when offered.
type fakeDistribSource struct {
	*StaticSource
	dist  [][]float64 // dist[class][bin], or nil to decline
	calls int
}

func (f *fakeDistribSource) NodeDistributions(attr int, rows []int, span Span) ([][]float64, bool) {
	f.calls++
	if f.dist == nil {
		return nil, false
	}
	return f.dist, true
}

func TestDistribSourceDrivesSplitSelection(t *testing.T) {
	// Stored values: attribute uninformative (all records bin 0 or 1 at
	// random vs label). Distribution estimate: class 0 entirely in bins
	// 0-1, class 1 entirely in bins 2-3 -> the gini scan should pick cut 1.
	n := 200
	col := make([]int, n)
	labels := make([]int, n)
	for i := range col {
		col[i] = i % 4
		labels[i] = (i / 2) % 2 // unrelated to col
	}
	static := makeSource(t, [][]int{col}, 4, labels, 2)
	fake := &fakeDistribSource{
		StaticSource: static,
		dist: [][]float64{
			{50, 50, 0, 0}, // class 0
			{0, 0, 50, 50}, // class 1
		},
	}
	spans := []Span{{Lo: 0, Hi: 3}}
	counts := sourceClassCounts(fake, rowsUpTo(n))
	best, err := findBestSplit(fake, rowsUpTo(n), spans, counts, 1, 1, make([][]int, 1))
	if err != nil {
		t.Fatal(err)
	}
	if fake.calls == 0 {
		t.Fatal("DistribSource was never consulted")
	}
	if best.attr != 0 || best.cut != 1 {
		t.Fatalf("split = attr%d cut %d, want attr0 cut 1 (driven by distributions)", best.attr, best.cut)
	}
	if best.gain <= 0.4 {
		t.Fatalf("gain %v too small for a perfect distribution split", best.gain)
	}
}

func TestDistribSourceDeclineFallsBackToValues(t *testing.T) {
	// Values perfectly separable; the declining DistribSource must not
	// prevent the value-based scan from finding the split.
	n := 100
	col := make([]int, n)
	labels := make([]int, n)
	for i := range col {
		col[i] = i % 4
		if col[i] >= 2 {
			labels[i] = 1
		}
	}
	static := makeSource(t, [][]int{col}, 4, labels, 2)
	fake := &fakeDistribSource{StaticSource: static, dist: nil}
	spans := []Span{{Lo: 0, Hi: 3}}
	counts := sourceClassCounts(fake, rowsUpTo(n))
	best, err := findBestSplit(fake, rowsUpTo(n), spans, counts, 1, 1, make([][]int, 1))
	if err != nil {
		t.Fatal(err)
	}
	if fake.calls == 0 {
		t.Fatal("DistribSource was never consulted")
	}
	if best.attr != 0 || best.cut != 1 {
		t.Fatalf("split = attr%d cut %d, want attr0 cut 1 (stored-value fallback)", best.attr, best.cut)
	}
}

func TestSpanNarrowsDuringGrowth(t *testing.T) {
	// Grow a tree on separable two-level data and verify that every split's
	// cut lies inside the feasible span implied by its ancestors.
	n := 800
	col0 := make([]int, n)
	col1 := make([]int, n)
	labels := make([]int, n)
	for i := range col0 {
		col0[i] = i % 8
		col1[i] = (i / 8) % 8
		if col0[i] >= 4 && col1[i] >= 4 {
			labels[i] = 1
		}
	}
	src := makeSource(t, [][]int{col0, col1}, 8, labels, 2)
	tr, err := Grow(src, Config{MinLeaf: 1, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node, spans []Span)
	walk = func(nd *Node, spans []Span) {
		if nd.IsLeaf() {
			return
		}
		s := spans[nd.Attr]
		if nd.Cut < s.Lo || nd.Cut >= s.Hi {
			t.Fatalf("cut %d of attr %d outside feasible span [%d,%d]", nd.Cut, nd.Attr, s.Lo, s.Hi)
		}
		left := append([]Span(nil), spans...)
		right := append([]Span(nil), spans...)
		left[nd.Attr].Hi = nd.Cut
		right[nd.Attr].Lo = nd.Cut + 1
		walk(nd.Left, left)
		walk(nd.Right, right)
	}
	walk(tr.Root, []Span{{0, 7}, {0, 7}})
}

func TestSpanHelpers(t *testing.T) {
	s := Span{Lo: 2, Hi: 5}
	if !s.Contains(2) || !s.Contains(5) || s.Contains(1) || s.Contains(6) {
		t.Error("Contains wrong")
	}
	if s.Count() != 4 {
		t.Errorf("Count = %d, want 4", s.Count())
	}
}

func TestStaticSourceValuesClampToSpan(t *testing.T) {
	src := makeSource(t, [][]int{{0, 3, 7}}, 8, []int{0, 1, 0}, 2)
	vals := src.Values(0, []int{0, 1, 2}, Span{Lo: 2, Hi: 5}, nil)
	want := []int{2, 3, 5}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("clamped values = %v, want %v", vals, want)
		}
	}
}

func rowsUpTo(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// sourceClassCounts tallies labels through the Source interface, standing in
// for the grower's internal counting in white-box tests.
func sourceClassCounts(src Source, rows []int) []int {
	counts := make([]int, src.NumClasses())
	for _, r := range rows {
		counts[src.Label(r)]++
	}
	return counts
}
