package ppdm_test

// Dense-vs-banded pairs for the flat-layout reconstruction kernel
// (internal/reconstruct). Every pair runs the identical workload with
// banding enabled (TailMass 0 = default, or an explicit tail budget) and
// disabled (TailMass -1: full dense rows); for uniform noise the two
// estimates are bit-identical, for gaussian/laplace they agree within the
// configured tail-mass tolerance, so the deltas are pure kernel cost. The
// cache is bypassed so every iteration pays the real matrix build. The
// Local pair measures the end-to-end training effect of the per-training
// node-geometry weight cache plus banding. Results land in
// BENCH_reconstruct.json.

import (
	"testing"

	"ppdm"
)

// benchReconValues perturbs 100k uniform samples on [0, 100] with m.
func benchReconValues(b *testing.B, m ppdm.NoiseModel) []float64 {
	b.Helper()
	r := ppdm.NewRand(1)
	vals := make([]float64, 100000)
	for i := range vals {
		vals[i] = r.Uniform(0, 100) + m.Sample(r)
	}
	return vals
}

// benchReconKernel runs the reconstruction at the package-default epsilon so
// the iteration kernel, not the O(n) observation histogram, dominates.
func benchReconKernel(b *testing.B, m ppdm.NoiseModel, k int, tail float64) {
	benchReconKernelF(b, m, k, tail, false)
}

// benchReconKernelF is benchReconKernel with the float32-slab switch exposed.
func benchReconKernelF(b *testing.B, m ppdm.NoiseModel, k int, tail float64, f32 bool) {
	b.Helper()
	vals := benchReconValues(b, m)
	part, err := ppdm.NewPartition(0, 100, k)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ppdm.Reconstruct(vals, ppdm.ReconstructConfig{
			Partition: part, Noise: m, TailMass: tail, Float32: f32, DisableWeightCache: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func uniformAt(b *testing.B, level float64) ppdm.NoiseModel {
	b.Helper()
	m, err := ppdm.UniformForPrivacy(level, 100, ppdm.DefaultConfidence)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// --- bounded noise (uniform): banding is exact, results bit-identical ---

func BenchmarkReconUniform25K200Dense(b *testing.B)  { benchReconKernel(b, uniformAt(b, 0.25), 200, -1) }
func BenchmarkReconUniform25K200Banded(b *testing.B) { benchReconKernel(b, uniformAt(b, 0.25), 200, 0) }
func BenchmarkReconUniform25K200BandedF32(b *testing.B) {
	benchReconKernelF(b, uniformAt(b, 0.25), 200, 0, true)
}
func BenchmarkReconUniform50K200Dense(b *testing.B)  { benchReconKernel(b, uniformAt(b, 0.5), 200, -1) }
func BenchmarkReconUniform50K200Banded(b *testing.B) { benchReconKernel(b, uniformAt(b, 0.5), 200, 0) }
func BenchmarkReconUniform50K200BandedF32(b *testing.B) {
	benchReconKernelF(b, uniformAt(b, 0.5), 200, 0, true)
}
func BenchmarkReconUniform25K50Dense(b *testing.B)  { benchReconKernel(b, uniformAt(b, 0.25), 50, -1) }
func BenchmarkReconUniform25K50Banded(b *testing.B) { benchReconKernel(b, uniformAt(b, 0.25), 50, 0) }

// --- unbounded noise: banding discards at most the configured tail mass ---

func gaussianSigma(b *testing.B, sigma float64) ppdm.NoiseModel {
	b.Helper()
	m, err := ppdm.NewGaussian(sigma)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func laplaceB(b *testing.B, scale float64) ppdm.NoiseModel {
	b.Helper()
	m, err := ppdm.NewLaplace(scale)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkReconGaussS3K200Dense(b *testing.B) { benchReconKernel(b, gaussianSigma(b, 3), 200, -1) }
func BenchmarkReconGaussS3K200Banded(b *testing.B) {
	benchReconKernel(b, gaussianSigma(b, 3), 200, 1e-6)
}
func BenchmarkReconGaussS3K200BandedF32(b *testing.B) {
	benchReconKernelF(b, gaussianSigma(b, 3), 200, 1e-6, true)
}
func BenchmarkReconLaplaceB2K200Dense(b *testing.B) { benchReconKernel(b, laplaceB(b, 2), 200, -1) }
func BenchmarkReconLaplaceB2K200Banded(b *testing.B) {
	benchReconKernel(b, laplaceB(b, 2), 200, 1e-6)
}

// --- Local-mode end-to-end: per-training node cache + banded kernel ---

func benchTrainLocalRecon(b *testing.B, family string, level float64, disableCache bool, tail float64) {
	b.Helper()
	tb := benchData(b, 10000)
	models, err := ppdm.ModelsForAllAttrs(tb.Schema(), family, level, ppdm.DefaultConfidence)
	if err != nil {
		b.Fatal(err)
	}
	perturbed, err := ppdm.PerturbTable(tb, models, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ppdm.TrainConfig{
		Mode: ppdm.Local, Noise: models,
		DisableWeightCache: disableCache, ReconTailMass: tail,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ppdm.Train(perturbed, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainLocalUniform100Banded(b *testing.B) {
	benchTrainLocalRecon(b, "uniform", 1.0, false, 0)
}
func BenchmarkTrainLocalUniform100Dense(b *testing.B) {
	benchTrainLocalRecon(b, "uniform", 1.0, true, -1)
}
func BenchmarkTrainLocalUniform50Banded(b *testing.B) {
	benchTrainLocalRecon(b, "uniform", 0.5, false, 0)
}
func BenchmarkTrainLocalUniform50Dense(b *testing.B) {
	benchTrainLocalRecon(b, "uniform", 0.5, true, -1)
}
func BenchmarkTrainLocalGauss100Banded(b *testing.B) {
	benchTrainLocalRecon(b, "gaussian", 1.0, false, 0)
}
func BenchmarkTrainLocalGauss100Dense(b *testing.B) {
	benchTrainLocalRecon(b, "gaussian", 1.0, true, -1)
}
