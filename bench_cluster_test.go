package ppdm_test

// Sharded-training and gateway fan-out throughput (internal/cluster,
// internal/cluster/gateway). The training benchmarks deal one perturbed
// record stream across 1/2/4/8 in-process shards and merge the shard
// statistics back into a single model (byte-identical to single-node
// training; TestShardMergeGolden enforces that separately) — ns_per_op is
// the full deal + shard-train + merge wall time. The gateway benchmarks
// fan gzipped bulk /classify bodies across latency-bound stub replicas:
// each stub models a network-attached ppdm-serve whose bulk service time
// (4ms, the measured cost of a ~2000-record gzipped stream body on this
// hardware, see BENCH_serve.json) dominates, which is the regime where
// replica fan-out pays. Recorded numbers live in BENCH_cluster.json.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ppdm"
	"ppdm/internal/bayes"
	"ppdm/internal/cluster"
	"ppdm/internal/cluster/gateway"
	"ppdm/internal/core"
	"ppdm/internal/dataset"
	"ppdm/internal/noise"
	"ppdm/internal/stream"
)

// clusterBenchN spans ten deal units (UnitLen = 8192 records), so even the
// eight-shard configuration keeps every shard busy.
const clusterBenchN = 80000

// clusterBenchData builds the perturbed training table and noise models
// shared by the training benchmarks.
func clusterBenchData(b *testing.B) (*dataset.Table, map[int]noise.Model) {
	b.Helper()
	models, err := ppdm.ModelsForAllAttrs(ppdm.BenchmarkSchema(), "gaussian", 1.0, ppdm.DefaultConfidence)
	if err != nil {
		b.Fatal(err)
	}
	table, err := ppdm.Generate(ppdm.GenConfig{Function: ppdm.F2, N: clusterBenchN, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	perturbed, err := ppdm.PerturbTable(table, models, 2)
	if err != nil {
		b.Fatal(err)
	}
	return perturbed, models
}

// BenchmarkClusterTrainNB times sharded naïve-Bayes training (deal, per-
// shard statistic accumulation, merge, finalize) at 1/2/4/8 shards over
// 80000 perturbed records. On multi-core hardware the shard goroutines
// overlap; on one core the spread between shard counts is pure dealing and
// merge overhead.
func BenchmarkClusterTrainNB(b *testing.B) {
	perturbed, models := clusterBenchData(b)
	cfg := bayes.Config{Mode: core.ByClass, Noise: models}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cluster.TrainNaiveBayes(stream.FromTable(perturbed, 0), cfg, cluster.Options{Shards: shards}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(clusterBenchN), "records/op")
		})
	}
}

// BenchmarkClusterTrainTree times sharded tree training (deal, per-shard
// columnar spill, spill interleave, reconstruct + grow) at 1/2/4/8 shards
// over the same 80000 perturbed records.
func BenchmarkClusterTrainTree(b *testing.B) {
	perturbed, models := clusterBenchData(b)
	cfg := core.Config{Mode: core.ByClass, Noise: models}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cluster.TrainTree(stream.FromTable(perturbed, 0), cfg, cluster.Options{Shards: shards}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(clusterBenchN), "records/op")
		})
	}
}

// gatewayStubLatency is each stub replica's bulk service time — the
// measured cost of a ~2000-record gzipped /classify body on this hardware
// (BENCH_serve.json: 2.1us/record).
const gatewayStubLatency = 4 * time.Millisecond

// gatewayBulkRecords is the notional record count each bulk request
// carries.
const gatewayBulkRecords = 2000

// newLatencyReplica boots one stub replica: it consumes the bulk body,
// holds the replica for the service time, and answers like a backend. The
// service section is serialized per replica — a single-core ppdm-serve
// classifies one bulk body at a time, so each replica is a
// throughput-capped unit (1/gatewayStubLatency bodies per second) and
// added replicas are the only way to absorb more load, exactly the
// resource the gateway fans out over.
func newLatencyReplica(b *testing.B) *httptest.Server {
	b.Helper()
	var busy sync.Mutex
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"status":"ok","model":{"generation":1}}`)
	})
	mux.HandleFunc("/classify", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		busy.Lock()
		time.Sleep(gatewayStubLatency)
		busy.Unlock()
		fmt.Fprintf(w, `{"n":%d}`, gatewayBulkRecords)
	})
	ts := httptest.NewServer(mux)
	b.Cleanup(ts.Close)
	return ts
}

// BenchmarkGatewayBulk measures bulk fan-out: concurrent clients post
// ~2000-record gzipped stream bodies through the gateway to 1/2/4
// latency-bound replicas. One op is one bulk request; throughput scales
// with the replica count because independent replicas absorb the service
// time concurrently — divide the replicas-1 ns_per_op by the replicas-N
// one for the fan-out factor.
func BenchmarkGatewayBulk(b *testing.B) {
	table, err := ppdm.Generate(ppdm.GenConfig{Function: ppdm.F2, N: gatewayBulkRecords, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	var gz bytes.Buffer
	w, err := ppdm.NewStreamWriter(&gz, table.Schema())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ppdm.CopyStream(w, ppdm.StreamTable(table, 0)); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	body := gz.Bytes()

	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas-%d", replicas), func(b *testing.B) {
			urls := make([]string, replicas)
			for i := range urls {
				urls[i] = newLatencyReplica(b).URL
			}
			g, err := gateway.New(gateway.Config{Backends: urls})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(g.Close)
			gw := httptest.NewServer(g.Handler())
			b.Cleanup(gw.Close)

			t := http.DefaultTransport.(*http.Transport).Clone()
			t.MaxIdleConns = 64
			t.MaxIdleConnsPerHost = 64
			client := &http.Client{Transport: t, Timeout: 30 * time.Second}
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					resp, err := client.Post(gw.URL+"/classify", "application/gzip", bytes.NewReader(body))
					if err != nil {
						b.Fatal(err)
					}
					var out struct {
						N int `json:"n"`
					}
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
						b.Fatal(err)
					}
					resp.Body.Close()
					if out.N != gatewayBulkRecords {
						b.Fatalf("bulk classify: n = %d, want %d", out.N, gatewayBulkRecords)
					}
				}
			})
			b.ReportMetric(float64(gatewayBulkRecords), "records/op")
		})
	}
}
