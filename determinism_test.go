package ppdm_test

// The engine's determinism contract — results are a pure function of seed
// and inputs, never of worker count — verified end to end through the public
// facade: perturbation, training in all five modes, and a full experiment
// run must produce byte-identical artifacts at Workers: 1 and Workers: 8.

import (
	"bytes"
	"testing"

	"ppdm"
	"ppdm/internal/eval"
)

func detData(t *testing.T, n int, seed uint64, workers int) *ppdm.Table {
	t.Helper()
	tb, err := ppdm.Generate(ppdm.GenConfig{Function: ppdm.F3, N: n, Seed: seed, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func tablesEqual(t *testing.T, a, b *ppdm.Table) bool {
	t.Helper()
	if a.N() != b.N() {
		return false
	}
	for i := 0; i < a.N(); i++ {
		if a.Label(i) != b.Label(i) {
			return false
		}
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] { // bitwise float equality, on purpose
				return false
			}
		}
	}
	return true
}

func TestGenerateWorkerDeterminism(t *testing.T) {
	serial := detData(t, 10000, 7, 1)
	parallelGen := detData(t, 10000, 7, 8)
	if !tablesEqual(t, serial, parallelGen) {
		t.Fatal("Generate output differs between Workers=1 and Workers=8")
	}
}

func TestPerturbTableWorkerDeterminism(t *testing.T) {
	tb := detData(t, 10000, 7, 4)
	for _, family := range []string{"uniform", "gaussian", "laplace"} {
		models, err := ppdm.ModelsForAllAttrs(tb.Schema(), family, 1.0, ppdm.DefaultConfidence)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := ppdm.PerturbTableWorkers(tb, models, 11, 1)
		if err != nil {
			t.Fatal(err)
		}
		par, err := ppdm.PerturbTableWorkers(tb, models, 11, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !tablesEqual(t, serial, par) {
			t.Fatalf("%s: PerturbTable output differs between Workers=1 and Workers=8", family)
		}
	}
}

// TestTrainWorkerDeterminism trains every mode at Workers 1 and 8 and
// compares the serialized classifiers byte for byte (the JSON document
// contains the full tree, including all counts).
func TestTrainWorkerDeterminism(t *testing.T) {
	clean := detData(t, 8000, 7, 4)
	models, err := ppdm.ModelsForAllAttrs(clean.Schema(), "gaussian", 1.0, ppdm.DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := ppdm.PerturbTable(clean, models, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ppdm.Mode{ppdm.Original, ppdm.Randomized, ppdm.Global, ppdm.ByClass, ppdm.Local} {
		input := perturbed
		if mode == ppdm.Original {
			input = clean
		}
		var docs [2]bytes.Buffer
		for i, workers := range []int{1, 8} {
			cfg := ppdm.TrainConfig{Mode: mode, Workers: workers, LocalMinRecords: 500}
			if mode.NeedsNoise() {
				cfg.Noise = models
			}
			clf, err := ppdm.Train(input, cfg)
			if err != nil {
				t.Fatalf("mode %v workers %d: %v", mode, workers, err)
			}
			if err := clf.Save(&docs[i]); err != nil {
				t.Fatalf("mode %v workers %d: %v", mode, workers, err)
			}
		}
		if !bytes.Equal(docs[0].Bytes(), docs[1].Bytes()) {
			t.Errorf("mode %v: trained model differs between Workers=1 and Workers=8", mode)
		}
	}
}

// TestSubtreeParallelWorkerDeterminism drives the fork-join subtree growth
// hard — a cutoff small enough that forking reaches deep into the tree —
// and demands byte-identical serialized classifiers at Workers 1 and 8,
// with and without pruning.
func TestSubtreeParallelWorkerDeterminism(t *testing.T) {
	clean := detData(t, 20000, 17, 4)
	models, err := ppdm.ModelsForAllAttrs(clean.Schema(), "gaussian", 1.0, ppdm.DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := ppdm.PerturbTable(clean, models, 19)
	if err != nil {
		t.Fatal(err)
	}
	for _, disablePruning := range []bool{false, true} {
		var docs [2]bytes.Buffer
		for i, workers := range []int{1, 8} {
			cfg := ppdm.TrainConfig{Mode: ppdm.ByClass, Noise: models, Workers: workers}
			cfg.Tree.SubtreeMinRows = 64
			cfg.Tree.DisablePruning = disablePruning
			clf, err := ppdm.Train(perturbed, cfg)
			if err != nil {
				t.Fatalf("workers %d: %v", workers, err)
			}
			if err := clf.Save(&docs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(docs[0].Bytes(), docs[1].Bytes()) {
			t.Errorf("pruning disabled=%v: subtree-parallel tree differs between Workers=1 and Workers=8", disablePruning)
		}
	}
}

// TestExperimentWorkerDeterminism renders a full accuracy experiment at both
// worker counts; the printable output must match byte for byte.
func TestExperimentWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full E5 run in -short mode")
	}
	var outs [2]bytes.Buffer
	for i, workers := range []int{1, 8} {
		res, err := ppdm.RunExperiment("E5", ppdm.ExperimentConfig{Scale: 0.05, Seed: 42, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Render(&outs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(outs[0].Bytes(), outs[1].Bytes()) {
		t.Error("E5 output differs between Workers=1 and Workers=8")
	}
}

// TestEvalWorkerDeterminism runs the full committed scenario matrix at
// Workers 1 and 8: the deterministic report rendering (timings stripped)
// must match byte for byte, extending the contract to the eval harness
// itself.
func TestEvalWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario matrix in -short mode")
	}
	specs, err := eval.LoadDir("eval/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	var outs [2]bytes.Buffer
	for i, workers := range []int{1, 8} {
		rep, err := eval.Run(specs, eval.Config{Scale: 0.05, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range rep.Results {
			if res.Err != "" {
				t.Fatalf("workers %d: scenario %s: %s", workers, res.Name, res.Err)
			}
		}
		if err := rep.JSON(&outs[i], false); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(outs[0].Bytes(), outs[1].Bytes()) {
		t.Error("eval report differs between Workers=1 and Workers=8")
	}
}

// TestReconstructWorkerDeterminism checks the facade end to end; note the
// second run may hit the shared transition-matrix cache, so the parallel
// precompute itself is additionally exercised cache-cold by
// internal/reconstruct's TestWeightWorkerDeterminism.
func TestReconstructWorkerDeterminism(t *testing.T) {
	tb := detData(t, 20000, 3, 4)
	models, err := ppdm.ModelsForAllAttrs(tb.Schema(), "gaussian", 1.0, ppdm.DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := ppdm.PerturbTable(tb, models, 5)
	if err != nil {
		t.Fatal(err)
	}
	ageIdx, _ := tb.Schema().AttrIndex("age")
	part, err := ppdm.NewPartition(20, 80, 50)
	if err != nil {
		t.Fatal(err)
	}
	col := perturbed.Column(ageIdx)
	var ps [2][]float64
	for i, workers := range []int{1, 8} {
		res, err := ppdm.Reconstruct(col, ppdm.ReconstructConfig{
			Partition: part, Noise: models[ageIdx], Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		ps[i] = res.P
	}
	for b := range ps[0] {
		if ps[0][b] != ps[1][b] {
			t.Fatalf("bin %d: reconstruction differs between Workers=1 and Workers=8", b)
		}
	}
}
