// Package ppdm is a from-scratch Go reproduction of "Privacy-Preserving
// Data Mining" (Agrawal & Srikant, SIGMOD 2000): building decision-tree
// classifiers over randomized data.
//
// The pipeline has three stages, all exposed through this package:
//
//  1. Perturb — data providers add uniform or gaussian noise to each
//     sensitive attribute, calibrated to a privacy level ("100% privacy"
//     means that with 95% confidence an adversary cannot pin a value down
//     to an interval narrower than the attribute's whole domain width):
//
//     models, _ := ppdm.ModelsForAllAttrs(table.Schema(), "gaussian", 1.0, ppdm.DefaultConfidence)
//     perturbed, _ := ppdm.PerturbTable(table, models, seed)
//
//  2. Reconstruct — the collector estimates the original distribution of
//     each attribute from the perturbed values and the known noise model,
//     without recovering any individual value:
//
//     res, _ := ppdm.Reconstruct(perturbed.Column(j), ppdm.ReconstructConfig{Partition: part, Noise: models[j]})
//
//  3. Train — a decision tree is induced over the reconstructed
//     distributions with one of the paper's strategies (ByClass is the
//     recommended default) and evaluated on clean data:
//
//     clf, _ := ppdm.Train(perturbed, ppdm.TrainConfig{Mode: ppdm.ByClass, Noise: models})
//     ev, _ := clf.Evaluate(testTable)
//
// The package also re-exports the synthetic benchmark generator used by the
// paper's evaluation (functions F1–F10 over nine person-record attributes),
// privacy metrics (confidence-interval, differential-entropy, and
// conditional), and the experiment harness that regenerates every table and
// figure of the paper (see DESIGN.md and EXPERIMENTS.md).
//
// # Concurrency and determinism
//
// Every hot stage of the pipeline runs on a shared chunked worker-pool
// engine (internal/parallel): record perturbation and synthetic generation
// are processed in fixed-size chunks with per-chunk PRNG substreams,
// training reconstructs attributes (and classes) in parallel, searches
// tree splits across attributes in parallel and grows left/right subtrees
// as fork-join tasks (TreeConfig.SubtreeMinRows sets the cutoff), and the
// experiment harness computes independent series points concurrently. Parallelism is bounded by
// the Workers field on GenConfig, TrainConfig, TreeConfig,
// ReconstructConfig, and ExperimentConfig (and by PerturbTableWorkers); 0
// means all cores. The bound applies per parallel stage, not globally:
// nested stages (an experiment point running Train, which itself fans out)
// each spawn up to Workers goroutines, and concurrent experiment points keep
// their tables in memory at once — at full paper scale expect a several-fold
// peak-memory increase over a serial run.
//
// All of it obeys one determinism contract: results are a pure function of
// the seed and the inputs, never of the worker count. Work decomposition
// (chunk grids, PRNG substream derivation, reduction order) depends only on
// the problem size, while workers merely race to claim chunks — so Workers:
// 1 and Workers: 64 produce byte-identical tables, models, and experiment
// output. Only wall-clock measurements (the E10 cost experiment) vary with
// the worker count.
package ppdm

import (
	"io"

	"ppdm/internal/assoc"
	"ppdm/internal/bayes"
	"ppdm/internal/core"
	"ppdm/internal/dataset"
	"ppdm/internal/experiments"
	"ppdm/internal/noise"
	"ppdm/internal/privacy"
	"ppdm/internal/prng"
	"ppdm/internal/reconstruct"
	"ppdm/internal/stream"
	"ppdm/internal/synth"
	"ppdm/internal/tree"
)

// Streaming types: record batches flowing through the pipeline without the
// full table ever materializing (see internal/stream).
type (
	// RecordBatch is one run of consecutive records of a streamed table.
	RecordBatch = stream.Batch
	// RecordSource yields successive record batches in global order.
	RecordSource = stream.Source
	// StreamWriter encodes record batches as a gzipped CSV stream.
	StreamWriter = stream.Writer
	// StreamReader decodes a gzipped record-batch stream; it implements
	// RecordSource.
	StreamReader = stream.Reader
	// StreamStats holds bounded-memory per-attribute, per-class sufficient
	// statistics collected from a record stream.
	StreamStats = reconstruct.StreamStats
)

// DefaultBatchSize is the record-batch length used when a batch size of 0 is
// passed to any streaming constructor.
const DefaultBatchSize = stream.DefaultBatchSize

// Data-model types.
type (
	// Schema describes a table's attributes and class vocabulary.
	Schema = dataset.Schema
	// Attribute describes one column.
	Attribute = dataset.Attribute
	// Table is an in-memory collection of records with class labels.
	Table = dataset.Table
	// Rand is the library's deterministic random source.
	Rand = prng.Source
)

// Perturbation types.
type (
	// NoiseModel is an additive zero-mean noise distribution.
	NoiseModel = noise.Model
	// Uniform is noise uniform on [-Alpha, +Alpha].
	Uniform = noise.Uniform
	// Gaussian is noise distributed N(0, Sigma²).
	Gaussian = noise.Gaussian
	// Laplace is noise with density exp(-|y|/b)/2b — the local
	// differential-privacy mechanism (extension).
	Laplace = noise.Laplace
	// RandomizedResponse perturbs categorical codes (extension).
	RandomizedResponse = noise.RandomizedResponse
)

// Reconstruction types.
type (
	// Partition divides an attribute domain into equal-width intervals.
	Partition = reconstruct.Partition
	// ReconstructConfig parameterizes Reconstruct.
	ReconstructConfig = reconstruct.Config
	// ReconstructResult is a reconstructed distribution plus convergence
	// info.
	ReconstructResult = reconstruct.Result
	// Algorithm selects the reconstruction update rule (Bayes or EM).
	Algorithm = reconstruct.Algorithm
	// Collector accumulates perturbed observations incrementally with
	// O(intervals) memory and reconstructs on demand.
	Collector = reconstruct.Collector
	// WeightCache is a bounded LRU of banded transition matrices; pass one
	// via ReconstructConfig.Cache to isolate a workload from the shared
	// cache.
	WeightCache = reconstruct.WeightCache
	// WeightCacheStats reports a WeightCache's hit/miss counters and size.
	WeightCacheStats = reconstruct.CacheStats
)

// DefaultTailMass is the noise mass the banded reconstruction kernel may
// discard per transition-matrix row for unbounded noise models when
// ReconstructConfig.TailMass is zero.
const DefaultTailMass = reconstruct.DefaultTailMass

// NewWeightCache returns a bounded LRU transition-matrix cache (capacity
// < 1 uses the package default).
func NewWeightCache(capacity int) *WeightCache { return reconstruct.NewWeightCache(capacity) }

// SharedWeightCacheStats reports the shared transition-matrix cache's
// counters.
func SharedWeightCacheStats() WeightCacheStats { return reconstruct.SharedWeightCacheStats() }

// Classification types.
type (
	// Mode is a training strategy (Original … Local).
	Mode = core.Mode
	// TrainConfig parameterizes Train.
	TrainConfig = core.Config
	// Classifier is a trained privacy-preserving decision-tree model.
	Classifier = core.Classifier
	// Evaluation summarizes test accuracy and the confusion matrix.
	Evaluation = core.Evaluation
	// Tree is the underlying decision tree.
	Tree = tree.Tree
	// TreeConfig tunes tree growth.
	TreeConfig = tree.Config
)

// Extension types: naive Bayes over reconstructed distributions and
// association-rule mining over randomized transactions.
type (
	// NaiveBayes is a naive Bayes classifier trained on (possibly
	// reconstructed) interval distributions.
	NaiveBayes = bayes.Classifier
	// NaiveBayesConfig parameterizes TrainNaiveBayes.
	NaiveBayesConfig = bayes.Config
	// Transactions is a boolean market-basket dataset.
	Transactions = assoc.Dataset
	// BitFlip is the per-item randomization operator for transactions.
	BitFlip = assoc.BitFlip
	// Itemset is a frequent itemset with its support.
	Itemset = assoc.Itemset
	// MiningConfig bounds Apriori mining.
	MiningConfig = assoc.MiningConfig
	// VerticalPolicy selects the mining counting engine via
	// MiningConfig.Vertical.
	VerticalPolicy = assoc.VerticalPolicy
	// BasketGenConfig parameterizes GenerateBaskets.
	BasketGenConfig = assoc.GenConfig
)

// Counting-engine policies for MiningConfig.Vertical: the zero-value
// VerticalAuto indexes datasets of at least assoc.VerticalThreshold
// transactions and scans smaller ones horizontally; VerticalOn and
// VerticalOff force one engine. Both engines produce byte-identical
// results.
const (
	// VerticalAuto picks the engine by dataset size (the default).
	VerticalAuto = assoc.VerticalAuto
	// VerticalOn forces the TID-bitmap index engine.
	VerticalOn = assoc.VerticalOn
	// VerticalOff forces the horizontal row-scan engine.
	VerticalOff = assoc.VerticalOff
)

// Benchmark and harness types.
type (
	// Function is one of the benchmark's classification functions F1..F10.
	Function = synth.Function
	// GenConfig parameterizes Generate.
	GenConfig = synth.Config
	// Experiment is one paper table/figure reproduction.
	Experiment = experiments.Experiment
	// ExperimentConfig scales and seeds an experiment run.
	ExperimentConfig = experiments.Config
	// ExperimentResult holds the printable series of one experiment.
	ExperimentResult = experiments.Result
	// ConditionalPrivacy reports prior/posterior entropy privacy.
	ConditionalPrivacy = privacy.ConditionalResult
)

// Training modes (paper §4).
const (
	Original   = core.Original
	Randomized = core.Randomized
	Global     = core.Global
	ByClass    = core.ByClass
	Local      = core.Local
)

// Reconstruction algorithms (paper §3 / PODS'01 extension).
const (
	Bayes = reconstruct.Bayes
	EM    = reconstruct.EM
)

// Benchmark classification functions (§5.1; F6–F10 are extensions).
const (
	F1  = synth.F1
	F2  = synth.F2
	F3  = synth.F3
	F4  = synth.F4
	F5  = synth.F5
	F6  = synth.F6
	F7  = synth.F7
	F8  = synth.F8
	F9  = synth.F9
	F10 = synth.F10
)

// DefaultConfidence is the confidence level at which the paper quotes
// privacy (95%).
const DefaultConfidence = noise.DefaultConfidence

// NewRand returns a deterministic random source.
func NewRand(seed uint64) *Rand { return prng.New(seed) }

// NewSchema validates attributes and class names and builds a Schema.
func NewSchema(attrs []Attribute, classes []string) (*Schema, error) {
	return dataset.NewSchema(attrs, classes)
}

// NumericAttr declares a continuous attribute on [lo, hi].
func NumericAttr(name string, lo, hi float64) Attribute { return dataset.NumericAttr(name, lo, hi) }

// IntegerAttr declares an integer-valued (ordinal) attribute on [lo, hi].
func IntegerAttr(name string, lo, hi float64) Attribute { return dataset.IntegerAttr(name, lo, hi) }

// CategoricalAttr declares a categorical attribute with codes 0..card-1.
func CategoricalAttr(name string, card int) Attribute { return dataset.CategoricalAttr(name, card) }

// NewTable returns an empty table over the schema.
func NewTable(s *Schema) *Table { return dataset.NewTable(s) }

// ReadCSV parses a table written by Table.WriteCSV.
func ReadCSV(r io.Reader, s *Schema) (*Table, error) { return dataset.ReadCSV(r, s) }

// BenchmarkSchema returns the paper benchmark's nine-attribute schema.
func BenchmarkSchema() *Schema { return synth.Schema() }

// Generate draws records from the paper's synthetic benchmark.
func Generate(cfg GenConfig) (*Table, error) { return synth.Generate(cfg) }

// GenerateStream returns a source that yields the same records Generate
// would materialize, batch records at a time (0 = DefaultBatchSize) with
// O(batch) memory — byte-identical to Generate for the same config at any
// worker count and batch size.
func GenerateStream(cfg GenConfig, batch int) (RecordSource, error) { return synth.Stream(cfg, batch) }

// StreamTable adapts an in-memory table into a record source.
func StreamTable(t *Table, batch int) RecordSource { return stream.FromTable(t, batch) }

// CollectTable materializes a record source into an in-memory table — the
// inverse of StreamTable.
func CollectTable(src RecordSource) (*Table, error) { return stream.Collect(src) }

// NewStreamWriter starts a gzipped record-batch stream on w; the compressed
// payload is exactly the CSV Table.WriteCSV would produce.
func NewStreamWriter(w io.Writer, s *Schema) (*StreamWriter, error) { return stream.NewWriter(w, s) }

// NewStreamReader opens a gzipped record-batch stream written by
// StreamWriter (batch 0 = DefaultBatchSize).
func NewStreamReader(r io.Reader, s *Schema, batch int) (*StreamReader, error) {
	return stream.NewReader(r, s, batch)
}

// CopyStream drains a record source into a stream writer and returns the
// number of records copied.
func CopyStream(w *StreamWriter, src RecordSource) (int, error) { return stream.Copy(w, src) }

// NewUniform returns uniform noise on [-alpha, +alpha].
func NewUniform(alpha float64) (Uniform, error) { return noise.NewUniform(alpha) }

// NewGaussian returns gaussian noise with the given standard deviation.
func NewGaussian(sigma float64) (Gaussian, error) { return noise.NewGaussian(sigma) }

// UniformForPrivacy calibrates uniform noise to a privacy level (fraction of
// the domain width) at a confidence level.
func UniformForPrivacy(level, width, conf float64) (Uniform, error) {
	return noise.UniformForPrivacy(level, width, conf)
}

// GaussianForPrivacy calibrates gaussian noise to a privacy level.
func GaussianForPrivacy(level, width, conf float64) (Gaussian, error) {
	return noise.GaussianForPrivacy(level, width, conf)
}

// NewLaplace returns Laplace noise with scale b.
func NewLaplace(b float64) (Laplace, error) { return noise.NewLaplace(b) }

// LaplaceForPrivacy calibrates Laplace noise to the paper's privacy level.
func LaplaceForPrivacy(level, width, conf float64) (Laplace, error) {
	return noise.LaplaceForPrivacy(level, width, conf)
}

// LaplaceForEpsilon calibrates Laplace noise to ε-differential privacy for
// a value whose domain width is width (extension).
func LaplaceForEpsilon(epsilon, width float64) (Laplace, error) {
	return noise.LaplaceForEpsilon(epsilon, width)
}

// ModelsForAllAttrs calibrates one noise model per attribute of the schema,
// all at the same privacy level relative to each attribute's own width.
func ModelsForAllAttrs(s *Schema, family string, level, conf float64) (map[int]NoiseModel, error) {
	return noise.ModelsForAllAttrs(s, family, level, conf)
}

// PerturbTable adds independent noise to each modeled attribute of every
// record (deep copy; deterministic in seed). It parallelizes across all
// cores; the result is identical to PerturbTableWorkers at any worker count.
func PerturbTable(t *Table, models map[int]NoiseModel, seed uint64) (*Table, error) {
	return noise.PerturbTable(t, models, seed)
}

// PerturbTableWorkers is PerturbTable with an explicit bound on the worker
// goroutines (0 = all cores). The output is bit-identical for every worker
// count.
func PerturbTableWorkers(t *Table, models map[int]NoiseModel, seed uint64, workers int) (*Table, error) {
	return noise.PerturbTableWorkers(t, models, seed, workers)
}

// PerturbStream perturbs record batches as they flow — the paper's
// collection model, where each record is randomized before it reaches the
// server. The streamed output is byte-identical to PerturbTableWorkers on
// the materialized table at any worker count and batch size.
func PerturbStream(src RecordSource, models map[int]NoiseModel, seed uint64, workers int) (RecordSource, error) {
	return noise.PerturbStream(src, models, seed, workers)
}

// DiscretizeTable applies the paper's value-class-membership operator.
func DiscretizeTable(t *Table, attrs []int, k int) (*Table, error) {
	return noise.DiscretizeTable(t, attrs, k)
}

// NewPartition divides [lo, hi] into k equal-width intervals.
func NewPartition(lo, hi float64, k int) (Partition, error) {
	return reconstruct.NewPartition(lo, hi, k)
}

// Reconstruct estimates the original distribution of an attribute from its
// perturbed values (paper §3).
func Reconstruct(perturbed []float64, cfg ReconstructConfig) (ReconstructResult, error) {
	return reconstruct.Reconstruct(perturbed, cfg)
}

// NewCollector returns an incremental observation collector over the given
// partition: it keeps only O(intervals) aggregated counts, never the raw
// perturbed values, and can reconstruct at any point during collection.
func NewCollector(part Partition) (*Collector, error) { return reconstruct.NewCollector(part) }

// CollectStreamStats drains a record source in one bounded-memory pass,
// accumulating per-attribute and per-(attribute, class) collectors for
// every attribute listed in parts; reconstruction from the collected
// statistics is bit-identical to reconstructing from materialized columns.
func CollectStreamStats(src RecordSource, parts map[int]Partition) (*StreamStats, error) {
	return reconstruct.CollectStream(src, parts)
}

// Train builds a privacy-preserving decision-tree classifier (paper §4).
func Train(train *Table, cfg TrainConfig) (*Classifier, error) { return core.Train(train, cfg) }

// TrainStream builds the decision-tree classifier from a record source
// without ever materializing the table: one streaming pass spills columnar
// (SPRINT-style) attribute lists to gzipped segment files, perturbed
// columns are reconstructed and re-assigned one at a time, and the tree
// grows from the spilled lists through a bounded segment cache. The model
// is byte-identical to Train on the materialized table at every worker
// count and batch size. All modes except Local are supported.
func TrainStream(src RecordSource, cfg TrainConfig) (*Classifier, error) {
	return core.TrainStream(src, cfg)
}

// LoadClassifier restores a classifier saved with Classifier.Save,
// validating the document (it may come from an untrusted source).
func LoadClassifier(r io.Reader) (*Classifier, error) { return core.Load(r) }

// LoadNaiveBayes restores a naive-Bayes model saved with NaiveBayes.Save
// (format "ppdm-nb/1"); the restored model predicts identically to the one
// that was saved.
func LoadNaiveBayes(r io.Reader) (*NaiveBayes, error) { return bayes.Load(r) }

// ParseMode parses a training-mode name ("original" … "local").
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// IntervalPrivacy returns the paper's confidence-interval privacy level of a
// noise model (§2.2).
func IntervalPrivacy(m NoiseModel, width, conf float64) (float64, error) {
	return privacy.IntervalPrivacy(m, width, conf)
}

// EntropyPrivacy returns the differential-entropy privacy Π = 2^h of a
// binned distribution (extension).
func EntropyPrivacy(p []float64, binWidth float64) (float64, error) {
	return privacy.EntropyPrivacy(p, binWidth)
}

// ConditionalPrivacyOf estimates prior and posterior entropy privacy of an
// attribute from its perturbed values (extension).
func ConditionalPrivacyOf(perturbed []float64, part Partition, m NoiseModel) (ConditionalPrivacy, error) {
	return privacy.Conditional(perturbed, part, m)
}

// TrainNaiveBayes builds a naive Bayes classifier over (reconstructed)
// interval distributions — the paper's scheme with a different learner.
func TrainNaiveBayes(train *Table, cfg NaiveBayesConfig) (*NaiveBayes, error) {
	return bayes.Train(train, cfg)
}

// TrainNaiveBayesStream trains the naive Bayes classifier from a record
// source in one bounded-memory pass; the model is identical to
// TrainNaiveBayes on the materialized table.
func TrainNaiveBayesStream(src RecordSource, cfg NaiveBayesConfig) (*NaiveBayes, error) {
	return bayes.TrainStream(src, cfg)
}

// NewTransactions returns an empty market-basket dataset over items
// 0..numItems-1.
func NewTransactions(numItems int) (*Transactions, error) { return assoc.NewDataset(numItems) }

// ReadTransactions parses a plain-text transaction stream — one transaction
// per line, items as space-separated non-negative integer IDs — into a
// market-basket dataset over items 0..numItems-1, ingesting batch-wise so
// parse memory stays O(batch).
func ReadTransactions(r io.Reader, numItems int) (*Transactions, error) {
	return assoc.ReadTransactions(r, numItems)
}

// ReadTransactionsFile reads a transaction file in the ReadTransactions
// format; numItems <= 0 infers the item universe with a first streaming
// pass.
func ReadTransactionsFile(path string, numItems int) (*Transactions, error) {
	return assoc.ReadTransactionsFile(path, numItems)
}

// NewBitFlip validates a per-item flip probability in [0, 0.5).
func NewBitFlip(f float64) (BitFlip, error) { return assoc.NewBitFlip(f) }

// GenerateBaskets draws a synthetic market-basket dataset and returns the
// planted patterns alongside it.
func GenerateBaskets(cfg BasketGenConfig) (*Transactions, [][]int, error) {
	return assoc.Generate(cfg)
}

// FrequentItemsets mines frequent itemsets with exact supports (Apriori).
func FrequentItemsets(d *Transactions, cfg MiningConfig) ([]Itemset, error) {
	return assoc.Frequent(d, cfg)
}

// FrequentFromRandomized mines the original data's frequent itemsets from a
// randomized dataset by inverting the bit-flip channel.
func FrequentFromRandomized(randomized *Transactions, bf BitFlip, cfg MiningConfig) ([]Itemset, error) {
	return assoc.FrequentFromRandomized(randomized, bf, cfg)
}

// CompareMining counts matches, false positives, and false negatives of a
// mined itemset collection against a reference collection.
func CompareMining(reference, mined []Itemset) (both, falsePos, falseNeg int) {
	return assoc.CompareMining(reference, mined)
}

// Experiments lists the paper-reproduction experiments (E1…E12).
func Experiments() []Experiment { return experiments.All() }

// RunExperiment runs one experiment by ID.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentResult, error) {
	return experiments.RunByID(id, cfg)
}
