package ppdm_test

import (
	"fmt"
	"log"

	"ppdm"
)

// The paper's pipeline end to end: perturb at 100% privacy, reconstruct,
// train ByClass, evaluate on clean data.
func Example() {
	train, err := ppdm.Generate(ppdm.GenConfig{Function: ppdm.F1, N: 20000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	test, err := ppdm.Generate(ppdm.GenConfig{Function: ppdm.F1, N: 5000, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	models, err := ppdm.ModelsForAllAttrs(train.Schema(), "gaussian", 1.0, ppdm.DefaultConfidence)
	if err != nil {
		log.Fatal(err)
	}
	perturbed, err := ppdm.PerturbTable(train, models, 3)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := ppdm.Train(perturbed, ppdm.TrainConfig{Mode: ppdm.ByClass, Noise: models})
	if err != nil {
		log.Fatal(err)
	}
	ev, err := clf.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy at 100%% privacy: %.1f%%\n", 100*ev.Accuracy)
	// Output:
	// accuracy at 100% privacy: 97.4%
}

// Calibrating noise to the paper's privacy metric: at 95% confidence, a
// "100% privacy" uniform model spans more than the whole domain.
func ExampleUniformForPrivacy() {
	u, err := ppdm.UniformForPrivacy(1.0, 100, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alpha = %.2f\n", u.Alpha)
	lvl, err := ppdm.IntervalPrivacy(u, 100, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("privacy level = %.0f%%\n", 100*lvl)
	// Output:
	// alpha = 52.63
	// privacy level = 100%
}

// Translating a local differential-privacy budget into the paper's metric.
func ExampleLaplaceForEpsilon() {
	l, err := ppdm.LaplaceForEpsilon(2.0, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scale b = %.0f\n", l.B)
	fmt.Printf("epsilon = %.1f\n", l.Epsilon(100))
	// Output:
	// scale b = 50
	// epsilon = 2.0
}
