package ppdm_test

import (
	"bytes"
	"strings"
	"testing"

	"ppdm"
)

// TestPublicPipeline exercises the whole library through the public facade
// only: generate → perturb → reconstruct → train → evaluate.
func TestPublicPipeline(t *testing.T) {
	train, err := ppdm.Generate(ppdm.GenConfig{Function: ppdm.F2, N: 8000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	test, err := ppdm.Generate(ppdm.GenConfig{Function: ppdm.F2, N: 1500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	models, err := ppdm.ModelsForAllAttrs(train.Schema(), "gaussian", 0.5, ppdm.DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := ppdm.PerturbTable(train, models, 3)
	if err != nil {
		t.Fatal(err)
	}

	// reconstruction of one attribute's distribution
	ageIdx, ok := train.Schema().AttrIndex("age")
	if !ok {
		t.Fatal("no age attribute")
	}
	part, err := ppdm.NewPartition(20, 80, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ppdm.Reconstruct(perturbed.Column(ageIdx), ppdm.ReconstructConfig{
		Partition: part, Noise: models[ageIdx],
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range res.P {
		if p < 0 {
			t.Fatal("negative reconstructed probability")
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("reconstruction sums to %v", sum)
	}

	clf, err := ppdm.Train(perturbed, ppdm.TrainConfig{Mode: ppdm.ByClass, Noise: models})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := clf.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0.8 {
		t.Errorf("public-API ByClass accuracy = %v, want > 0.8 at 50%% privacy", ev.Accuracy)
	}
}

func TestPublicPrivacyMetrics(t *testing.T) {
	g, err := ppdm.GaussianForPrivacy(1.0, 100, ppdm.DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	lvl, err := ppdm.IntervalPrivacy(g, 100, ppdm.DefaultConfidence)
	if err != nil || lvl < 0.999 || lvl > 1.001 {
		t.Fatalf("IntervalPrivacy = %v, %v", lvl, err)
	}
	ep, err := ppdm.EntropyPrivacy([]float64{0.25, 0.25, 0.25, 0.25}, 25)
	if err != nil || ep < 99 || ep > 101 {
		t.Fatalf("EntropyPrivacy = %v, %v", ep, err)
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	tb, err := ppdm.Generate(ppdm.GenConfig{Function: ppdm.F1, N: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ppdm.ReadCSV(&buf, ppdm.BenchmarkSchema())
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 20 {
		t.Fatalf("round trip N = %d", back.N())
	}
}

func TestPublicExperiments(t *testing.T) {
	exps := ppdm.Experiments()
	if len(exps) != 13 {
		t.Fatalf("Experiments() returned %d, want 13", len(exps))
	}
	res, err := ppdm.RunExperiment("E4", ppdm.ExperimentConfig{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "F1") {
		t.Error("E4 render missing F1 row")
	}
}

func TestPublicCustomSchema(t *testing.T) {
	schema, err := ppdm.NewSchema(
		[]ppdm.Attribute{
			ppdm.NumericAttr("income", 0, 200000),
			ppdm.IntegerAttr("visits", 0, 50),
		},
		[]string{"low", "high"},
	)
	if err != nil {
		t.Fatal(err)
	}
	tb := ppdm.NewTable(schema)
	r := ppdm.NewRand(7)
	for i := 0; i < 3000; i++ {
		income := r.Uniform(0, 200000)
		visits := float64(r.Intn(51))
		label := 0
		if income > 100000 {
			label = 1
		}
		if err := tb.Append([]float64{income, visits}, label); err != nil {
			t.Fatal(err)
		}
	}
	models, err := ppdm.ModelsForAllAttrs(schema, "uniform", 0.5, ppdm.DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := ppdm.PerturbTable(tb, models, 8)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := ppdm.Train(perturbed, ppdm.TrainConfig{Mode: ppdm.ByClass, Noise: models})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := clf.Evaluate(tb)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0.85 {
		t.Errorf("custom-schema accuracy = %v, want > 0.85", ev.Accuracy)
	}
}
