package ppdm_test

// Pointer-tree vs flattened-tree classification, single vs batch, and the
// serving steady state end to end. The pointer baselines run the exact
// pre-flattening code path (a hand-assembled Classifier has no flat form,
// so ClassifyBatch falls back to per-record pointer walks); the flat
// variants run the same records through the contiguous 16-byte node array.
// The workload is a ~96k-node unpruned tree grown on noisy data: large
// enough that the walk leaves cache and the layout — not parallelism
// (workers pinned to 1) — is what the pairs measure. The bins-level pair
// drops discretization and isolates the walk itself. The serve benchmarks
// drive the full /classify handler chain in-process with a replayable body
// and report allocations, pinning the zero-alloc steady state. Results
// land in BENCH_classify.json. Flat and pointer predictions are asserted
// identical on every example dataset by flat_golden_test.go.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ppdm"
	"ppdm/internal/serve"
)

// classifyBenchRecords is the query-batch size of the batched benchmarks.
const classifyBenchRecords = 4096

// benchBigClassifier grows a deliberately large tree — gaussian-perturbed
// attributes, pruning off, MinLeaf 1 — so root-to-leaf walks traverse a
// node set far beyond L1/L2 and the memory layout dominates the walk cost.
// It returns the trained classifier, a pointer-only twin (hand-assembled,
// so it classifies through the pre-flattening pointer path), and a clean
// query set as raw records and discretized bins.
func benchBigClassifier(b *testing.B) (flat, pointer *ppdm.Classifier, records [][]float64, bins [][]int) {
	b.Helper()
	models, err := ppdm.ModelsForAllAttrs(ppdm.BenchmarkSchema(), "gaussian", 1.0, ppdm.DefaultConfidence)
	if err != nil {
		b.Fatal(err)
	}
	table, err := ppdm.Generate(ppdm.GenConfig{Function: ppdm.F5, N: 300000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	perturbed, err := ppdm.PerturbTable(table, models, 2)
	if err != nil {
		b.Fatal(err)
	}
	clf, err := ppdm.Train(perturbed, ppdm.TrainConfig{Mode: ppdm.Original, Intervals: 100,
		Tree: ppdm.TreeConfig{MaxDepth: 40, MinLeaf: 1, MinGain: 1e-9, DisablePruning: true}})
	if err != nil {
		b.Fatal(err)
	}
	ptr := &ppdm.Classifier{Mode: clf.Mode, Tree: clf.Tree, Schema: clf.Schema, Partitions: clf.Partitions}
	queries, err := ppdm.Generate(ppdm.GenConfig{Function: ppdm.F5, N: classifyBenchRecords, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	records = make([][]float64, queries.N())
	bins = make([][]int, queries.N())
	for i := range records {
		records[i] = queries.Row(i)
		bins[i] = make([]int, len(clf.Partitions))
		for j, v := range records[i] {
			bins[i][j] = clf.Partitions[j].Bin(v)
		}
	}
	return clf, ptr, records, bins
}

// BenchmarkClassifyPointerBatch is the pre-flattening baseline: the same
// ClassifyBatch API on the pointer-only twin, which discretizes and walks
// heap nodes per record — exactly what batch classification did before the
// flat layout. One op = the whole 4096-record batch.
func BenchmarkClassifyPointerBatch(b *testing.B) {
	_, ptr, records, _ := benchBigClassifier(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ptr.ClassifyBatch(records, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(records)), "records/op")
}

// BenchmarkClassifyFlatBatch runs the identical workload through the
// flattened node array (workers pinned to 1 so the delta over PointerBatch
// is pure layout, not parallelism).
func BenchmarkClassifyFlatBatch(b *testing.B) {
	clf, _, records, _ := benchBigClassifier(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clf.ClassifyBatch(records, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(records)), "records/op")
}

// BenchmarkClassifyPointerWalkBatch walks the pointer tree over
// pre-discretized records — the walk alone, no binning.
func BenchmarkClassifyPointerWalkBatch(b *testing.B) {
	clf, _, _, bins := benchBigClassifier(b)
	out := make([]int, len(bins))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r, rec := range bins {
			class, err := clf.Tree.Predict(rec)
			if err != nil {
				b.Fatal(err)
			}
			out[r] = class
		}
	}
	b.ReportMetric(float64(len(bins)), "records/op")
}

// BenchmarkClassifyFlatWalkBatch is the flat-array counterpart of
// PointerWalkBatch: FlatClassifier.ClassifyBatchInto over the same bins.
func BenchmarkClassifyFlatWalkBatch(b *testing.B) {
	clf, _, _, bins := benchBigClassifier(b)
	flat, err := clf.Tree.Flatten()
	if err != nil {
		b.Fatal(err)
	}
	out := make([]int, len(bins))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flat.ClassifyBatchInto(bins, out)
	}
	b.ReportMetric(float64(len(bins)), "records/op")
}

// BenchmarkClassifyPointerSingle is the per-record pointer API on the same
// tree: one op = one Predict through heap nodes.
func BenchmarkClassifyPointerSingle(b *testing.B) {
	_, ptr, records, _ := benchBigClassifier(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ptr.Predict(records[i%len(records)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassifyFlatSingle is the per-record API on the flattened tree
// (Predict: discretize into a stack buffer, walk the node array).
func BenchmarkClassifyFlatSingle(b *testing.B) {
	clf, _, records, _ := benchBigClassifier(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clf.Predict(records[i%len(records)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- serve end-to-end: the full /classify handler chain, in-process ---

// classifyReplayBody is a resettable request body so one http.Request drives
// every iteration without per-op allocations of its own.
type classifyReplayBody struct {
	data []byte
	off  int
}

func (r *classifyReplayBody) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *classifyReplayBody) Close() error { return nil }

// classifyNullWriter discards the response through a reusable header map.
type classifyNullWriter struct {
	header http.Header
	status int
}

func (w *classifyNullWriter) Header() http.Header  { return w.header }
func (w *classifyNullWriter) WriteHeader(code int) { w.status = code }
func (w *classifyNullWriter) Write(p []byte) (int, error) {
	return len(p), nil
}

// benchServeClassify measures the whole handler chain — mux dispatch,
// instrumentation, hand-rolled JSON parse, micro-batcher, prediction cache,
// response render — for one fixed n-record body, steady state
// (b.ReportAllocs shows the zero-alloc contract of TestClassifyHandlerAllocs
// holding under load). The model is the standard ByClass serving tree.
func benchServeClassify(b *testing.B, n int) {
	b.Helper()
	models, err := ppdm.ModelsForAllAttrs(ppdm.BenchmarkSchema(), "gaussian", 1.0, ppdm.DefaultConfidence)
	if err != nil {
		b.Fatal(err)
	}
	table, err := ppdm.Generate(ppdm.GenConfig{Function: ppdm.F2, N: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	perturbed, err := ppdm.PerturbTable(table, models, 2)
	if err != nil {
		b.Fatal(err)
	}
	clf, err := ppdm.Train(perturbed, ppdm.TrainConfig{Mode: ppdm.ByClass, Noise: models})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := ppdm.Generate(ppdm.GenConfig{Function: ppdm.F2, N: n, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	records := make([][]float64, queries.N())
	for i := range records {
		records[i] = queries.Row(i)
	}
	path := filepath.Join(b.TempDir(), "model.json")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := clf.Save(f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	s, err := serve.New(serve.Config{ModelPath: path, MaxBatch: 1, FlushDelay: time.Nanosecond})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)

	body, err := json.Marshal(map[string]any{"records": records})
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/classify", nil)
	rb := &classifyReplayBody{data: body}
	req.Body = rb
	w := &classifyNullWriter{header: make(http.Header)}
	handler := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.off = 0
		w.status = 0
		handler.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("classify: status %d", w.status)
		}
	}
	b.ReportMetric(float64(len(records)), "records/op")
}

// BenchmarkServeClassifySteadySingle is the steady-state single-record
// request; after warm-up the repeated record answers from the prediction
// cache with zero heap allocations per request.
func BenchmarkServeClassifySteadySingle(b *testing.B) {
	benchServeClassify(b, 1)
}

// BenchmarkServeClassifySteadyBatch is the 8-record steady-state request,
// also zero allocations per request.
func BenchmarkServeClassifySteadyBatch(b *testing.B) {
	benchServeClassify(b, 8)
}
